package ara

import (
	"fmt"

	"repro/internal/someip"
)

// Handler implements one service method synchronously. It runs on a
// worker thread; the returned payload becomes the response. Returning a
// *RemoteError maps to that SOME/IP return code; any other error maps to
// E_NOT_OK.
type Handler func(c *Ctx, args []byte) ([]byte, error)

// AsyncHandler implements one service method by returning a future, as
// ara::com specifies ("the implementation of the service method is
// expected to return a future; as soon as the corresponding promise is
// fulfilled, the server sends a message back to the client"). The DEAR
// server method transactor relies on this to defer the response until the
// server reactor produces it.
type AsyncHandler func(c *Ctx, args []byte) *Future

// Skeleton is the server-side access object for one offered service
// instance: the abstract class a service implementation fills in with
// method handlers and through which it raises events.
type Skeleton struct {
	rt       *Runtime
	iface    *ServiceInterface
	key      someip.ServiceKey
	handlers map[someip.MethodID]AsyncHandler
	fields   map[string]*FieldServer
	offered  bool
}

// NewSkeleton creates a skeleton for a service instance on this runtime.
// At most one skeleton per service ID may exist per runtime.
func (rt *Runtime) NewSkeleton(si *ServiceInterface, instance someip.InstanceID) (*Skeleton, error) {
	if err := si.Validate(); err != nil {
		return nil, err
	}
	if _, dup := rt.skeletons[si.ID]; dup {
		return nil, fmt.Errorf("ara: runtime %s already has a skeleton for service %#x", rt.name, uint16(si.ID))
	}
	sk := &Skeleton{
		rt:       rt,
		iface:    si,
		key:      someip.ServiceKey{Service: si.ID, Instance: instance},
		handlers: map[someip.MethodID]AsyncHandler{},
		fields:   map[string]*FieldServer{},
	}
	rt.skeletons[si.ID] = sk
	for _, fs := range si.Fields {
		sk.fields[fs.Name] = newFieldServer(sk, fs)
	}
	return sk, nil
}

// Interface returns the service interface description.
func (sk *Skeleton) Interface() *ServiceInterface { return sk.iface }

// Key returns the offered service key.
func (sk *Skeleton) Key() someip.ServiceKey { return sk.key }

// Handle installs the implementation of a method by name.
func (sk *Skeleton) Handle(method string, h Handler) error {
	spec, ok := sk.iface.Method(method)
	if !ok {
		return fmt.Errorf("ara: %s has no method %q", sk.iface.Name, method)
	}
	sk.HandleID(spec.ID, h)
	return nil
}

// HandleAsync installs a future-returning implementation by name.
func (sk *Skeleton) HandleAsync(method string, h AsyncHandler) error {
	spec, ok := sk.iface.Method(method)
	if !ok {
		return fmt.Errorf("ara: %s has no method %q", sk.iface.Name, method)
	}
	sk.HandleIDAsync(spec.ID, h)
	return nil
}

// HandleID installs a synchronous handler by wire ID (used by generated
// field accessors and transactors).
func (sk *Skeleton) HandleID(id someip.MethodID, h Handler) {
	sk.handlers[id] = func(c *Ctx, args []byte) *Future {
		payload, err := h(c, args)
		return ResolvedFuture(sk.rt.k, Result{Payload: payload, Err: err})
	}
}

// HandleIDAsync installs a future-returning handler by wire ID. The
// response message is sent when the future resolves.
func (sk *Skeleton) HandleIDAsync(id someip.MethodID, h AsyncHandler) {
	sk.handlers[id] = h
}

// Offer makes the service available and, on runtimes with an SD agent,
// announces it via SD. Requests arriving before Offer are answered with
// E_UNKNOWN_SERVICE. On SD-less runtimes (UDP) clients reach the service
// through statically configured endpoints (StaticProxy).
func (sk *Skeleton) Offer() {
	sk.offered = true
	if sk.rt.sd != nil {
		sk.rt.sd.Offer(sk.key, sk.iface.Major, sk.iface.Minor, sk.rt.simAddr())
	}
}

// StopOffer withdraws the service.
func (sk *Skeleton) StopOffer() {
	sk.offered = false
	if sk.rt.sd != nil {
		sk.rt.sd.StopOffer(sk.key)
	}
}

// Notify raises an event by name, fanning it out to all subscribers.
func (sk *Skeleton) Notify(event string, payload []byte) error {
	spec, ok := sk.iface.Event(event)
	if !ok {
		return fmt.Errorf("ara: %s has no event %q", sk.iface.Name, event)
	}
	sk.NotifyID(spec.ID, spec.Eventgroup, payload)
	return nil
}

// NotifyID raises an event by wire ID and eventgroup. Without an SD
// agent there are no subscribers and the notification is dropped.
func (sk *Skeleton) NotifyID(id someip.MethodID, eventgroup uint16, payload []byte) {
	if sk.rt.sd == nil {
		return
	}
	for _, sub := range sk.rt.sd.Subscribers(sk.key, eventgroup) {
		sk.rt.send(sub, &someip.Message{
			Service:          sk.key.Service,
			Method:           id,
			Client:           0,
			Session:          sk.rt.nextSession(),
			InterfaceVersion: sk.iface.Major,
			Type:             someip.TypeNotification,
			Code:             someip.EOK,
			Payload:          payload,
		})
	}
}

// Field returns the server-side accessor for a field.
func (sk *Skeleton) Field(name string) (*FieldServer, error) {
	f, ok := sk.fields[name]
	if !ok {
		return nil, fmt.Errorf("ara: %s has no field %q", sk.iface.Name, name)
	}
	return f, nil
}
