// Package ara implements the communication-management substrate of the
// AUTOSAR Adaptive Platform (ara::com) used by the paper: services are
// described by interfaces composed of methods, events and fields; servers
// implement skeletons, clients obtain proxies through service discovery,
// method calls return futures, and incoming work is dispatched onto a
// pool of (simulated) worker threads.
//
// The executor's dispatch behaviour deliberately models the paper's first
// and second sources of nondeterminism: each invocation is mapped to a
// worker thread and the processing order is determined by the (simulated,
// seeded) thread scheduler — not by issue order.
package ara

import (
	"fmt"

	"repro/internal/someip"
)

// MethodSpec describes one method of a service interface.
type MethodSpec struct {
	ID   someip.MethodID
	Name string
	// FireAndForget marks methods without a response message.
	FireAndForget bool
}

// EventSpec describes one event of a service interface.
type EventSpec struct {
	ID         someip.MethodID // must have the event flag set
	Name       string
	Eventgroup uint16
}

// FieldSpec describes one field: an exposed state variable with optional
// get/set methods and an optional change notifier event.
type FieldSpec struct {
	Name       string
	Get        someip.MethodID // 0 = no getter
	Set        someip.MethodID // 0 = no setter
	Notifier   someip.MethodID // 0 = no notifier; otherwise an event ID
	Eventgroup uint16
}

// ServiceInterface is the design-time description of a service, the
// ara::com equivalent of the ARXML service interface deployment.
type ServiceInterface struct {
	Name    string
	ID      someip.ServiceID
	Major   uint8
	Minor   uint32
	Methods []MethodSpec
	Events  []EventSpec
	Fields  []FieldSpec
}

// Method looks up a method spec by name.
func (si *ServiceInterface) Method(name string) (MethodSpec, bool) {
	for _, m := range si.Methods {
		if m.Name == name {
			return m, true
		}
	}
	return MethodSpec{}, false
}

// Event looks up an event spec by name.
func (si *ServiceInterface) Event(name string) (EventSpec, bool) {
	for _, e := range si.Events {
		if e.Name == name {
			return e, true
		}
	}
	return EventSpec{}, false
}

// Field looks up a field spec by name.
func (si *ServiceInterface) Field(name string) (FieldSpec, bool) {
	for _, f := range si.Fields {
		if f.Name == name {
			return f, true
		}
	}
	return FieldSpec{}, false
}

// EventByID looks up an event spec by its wire identifier.
func (si *ServiceInterface) EventByID(id someip.MethodID) (EventSpec, bool) {
	for _, e := range si.Events {
		if e.ID == id {
			return e, true
		}
	}
	return EventSpec{}, false
}

// Validate checks internal consistency of the interface description.
func (si *ServiceInterface) Validate() error {
	if si.ID == 0 || si.ID == someip.SDService {
		return fmt.Errorf("ara: interface %s: invalid service id %#x", si.Name, uint16(si.ID))
	}
	seen := map[someip.MethodID]string{}
	claim := func(id someip.MethodID, what string) error {
		if id == 0 {
			return nil
		}
		if prev, dup := seen[id]; dup {
			return fmt.Errorf("ara: interface %s: id %#x used by both %s and %s", si.Name, uint16(id), prev, what)
		}
		seen[id] = what
		return nil
	}
	for _, m := range si.Methods {
		if m.ID.IsEvent() {
			return fmt.Errorf("ara: interface %s: method %s has event flag set", si.Name, m.Name)
		}
		if err := claim(m.ID, "method "+m.Name); err != nil {
			return err
		}
	}
	for _, e := range si.Events {
		if !e.ID.IsEvent() {
			return fmt.Errorf("ara: interface %s: event %s lacks event flag", si.Name, e.Name)
		}
		if err := claim(e.ID, "event "+e.Name); err != nil {
			return err
		}
	}
	for _, f := range si.Fields {
		if f.Get.IsEvent() || f.Set.IsEvent() {
			return fmt.Errorf("ara: interface %s: field %s get/set must be methods", si.Name, f.Name)
		}
		if f.Notifier != 0 && !f.Notifier.IsEvent() {
			return fmt.Errorf("ara: interface %s: field %s notifier must be an event", si.Name, f.Name)
		}
		if err := claim(f.Get, "field "+f.Name+" getter"); err != nil {
			return err
		}
		if err := claim(f.Set, "field "+f.Name+" setter"); err != nil {
			return err
		}
		if err := claim(f.Notifier, "field "+f.Name+" notifier"); err != nil {
			return err
		}
	}
	return nil
}
