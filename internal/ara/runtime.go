package ara

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/logical"
	"repro/internal/simnet"
	"repro/internal/someip"
)

// BindingHook intercepts messages at the SOME/IP binding boundary. The
// DEAR framework installs a hook to implement the paper's "modified
// SOME/IP binding": Outgoing pulls a tag from the timestamp bypass and
// attaches it to the message; Incoming extracts the tag and pushes it to
// the bypass before the message continues up the standard stack. The
// hook sees substrate-independent addresses, so the same hook works over
// the simulated network and over real UDP sockets.
type BindingHook interface {
	Outgoing(m *someip.Message)
	Incoming(src someip.Addr, m *someip.Message)
}

// Config configures a Runtime (one per software component process).
type Config struct {
	// Name identifies the SWC process (used for process and RNG naming).
	Name string
	// Port is the application endpoint port (0 = ephemeral).
	Port uint16
	// ClientID for outgoing requests; 0 derives one from host and port.
	ClientID someip.ClientID
	// Exec configures the worker-thread pool.
	Exec ExecConfig
	// SD configures service discovery timing.
	SD someip.AgentConfig
	// Tagged selects the modified (tag-aware) SOME/IP binding.
	Tagged bool
	// MTU enables SOME/IP-TP segmentation for messages exceeding this
	// wire size (0 = no segmentation).
	MTU int
	// WrapEndpoint, when set, wraps the runtime's transport endpoint at
	// construction time — the seam trace recording installs itself at
	// (e.g. trace.NewRecordingEndpoint). The wrapper sees every message
	// the binding sends and receives, on any substrate.
	WrapEndpoint func(someip.Endpoint) someip.Endpoint
}

// Runtime is the per-process ara::com runtime: it owns the application
// endpoint, the SD agent, the worker-thread executor and the
// request/response bookkeeping.
//
// A Runtime runs over a pluggable transport (someip.Endpoint). Two
// substrates exist today: the deterministic simulated network (via
// NewRuntime, the default for experiments) and real UDP sockets driven
// by a physical-clock kernel driver (via NewUDPRuntime).
type Runtime struct {
	host  *simnet.Host // nil for runtimes on real sockets
	k     *des.Kernel
	clock *des.LocalClock
	name  string
	cfg   Config

	conn     someip.Endpoint
	sd       *someip.Agent // nil without an SD substrate (UDP runtimes)
	exec     *Executor
	clientID someip.ClientID
	session  someip.SessionID
	pending  map[someip.SessionID]*Future

	skeletons map[someip.ServiceID]*Skeleton
	eventSubs map[eventKey][]func(*Ctx, []byte)

	hook BindingHook
	rng  *des.Rand
}

type eventKey struct {
	service someip.ServiceID
	event   someip.MethodID
}

// NewRuntime creates a runtime on a simulated host: the endpoint is a
// simnet binding, service discovery runs over the simulated SD multicast
// group, and execution is driven deterministically by the host's kernel.
func NewRuntime(host *simnet.Host, cfg Config) (*Runtime, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("ara: runtime needs a name")
	}
	k := host.Net().Kernel()
	ep, err := host.Bind(cfg.Port)
	if err != nil {
		return nil, err
	}
	sd, err := someip.NewAgent(host, cfg.SD)
	if err != nil {
		return nil, err
	}
	clientID := cfg.ClientID
	if clientID == 0 {
		clientID = someip.ClientID(host.ID()<<8 | ep.Addr().Port&0xff)
	}
	rt := newRuntime(k, host.Clock(), cfg, someip.NewConnMTU(ep, cfg.Tagged, cfg.MTU), clientID)
	rt.host = host
	rt.sd = sd
	rt.conn.OnMessage(rt.handle)
	return rt, nil
}

// NewUDPRuntime creates a runtime whose endpoint is a real UDP socket
// (addr uses net.ListenUDP semantics, e.g. "127.0.0.1:0"). The runtime's
// kernel is driven by the real-time driver: socket receptions are
// injected as kernel events, so handlers, futures and the executor run
// on the driver's goroutine exactly as they do under simulation —
// except that time is now physical.
//
// UDP runtimes have no service-discovery agent; peers are configured
// statically with StaticProxy. Close the runtime when done.
func NewUDPRuntime(drv *des.RealTime, addr string, cfg Config) (*Runtime, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("ara: runtime needs a name")
	}
	conn, err := someip.ListenUDP(addr, cfg.Tagged, cfg.MTU)
	if err != nil {
		return nil, err
	}
	k := drv.Kernel()
	clientID := cfg.ClientID
	if clientID == 0 {
		clientID = someip.ClientID(conn.Addr().Port)
	}
	// The physical clock: kernel time already tracks the wall clock under
	// the real-time driver, so the local clock is the identity mapping.
	rt := newRuntime(k, k.NewLocalClock(des.ClockConfig{}, nil), cfg, conn, clientID)
	rt.conn.OnMessage(func(src someip.Addr, m *someip.Message) {
		// Handlers must run on the kernel goroutine; the socket reader
		// hands the message over through the driver's injection queue.
		drv.Inject(func() { rt.handle(src, m) })
	})
	return rt, nil
}

// NewEndpointRuntime creates a runtime over an arbitrary pre-built
// transport endpoint driven directly by the given kernel: the
// endpoint must deliver inbound messages in the kernel's execution
// context (as simulated transports do). It is the replay seam — a
// trace.Replayer is an Endpoint whose "network" is a recorded trace —
// and is useful for any custom substrate that speaks someip.Endpoint.
// Like UDP runtimes it has no service-discovery agent; peers are
// configured statically.
func NewEndpointRuntime(k *des.Kernel, ep someip.Endpoint, cfg Config) (*Runtime, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("ara: runtime needs a name")
	}
	clientID := cfg.ClientID
	if clientID == 0 {
		clientID = 1
	}
	rt := newRuntime(k, k.NewLocalClock(des.ClockConfig{}, nil), cfg, ep, clientID)
	rt.conn.OnMessage(rt.handle)
	return rt, nil
}

func newRuntime(k *des.Kernel, clock *des.LocalClock, cfg Config, conn someip.Endpoint, clientID someip.ClientID) *Runtime {
	if cfg.WrapEndpoint != nil {
		conn = cfg.WrapEndpoint(conn)
	}
	rng := k.Rand("ara." + cfg.Name)
	return &Runtime{
		k:         k,
		clock:     clock,
		name:      cfg.Name,
		cfg:       cfg,
		conn:      conn,
		exec:      NewExecutor(k, rng.Stream("exec"), cfg.Exec),
		clientID:  clientID,
		pending:   map[someip.SessionID]*Future{},
		skeletons: map[someip.ServiceID]*Skeleton{},
		eventSubs: map[eventKey][]func(*Ctx, []byte){},
		rng:       rng,
	}
}

// Name returns the runtime's process name.
func (rt *Runtime) Name() string { return rt.name }

// Host returns the simulated platform the runtime executes on, or nil
// for runtimes bound to real sockets.
func (rt *Runtime) Host() *simnet.Host { return rt.host }

// Kernel returns the kernel that schedules the runtime's execution.
func (rt *Runtime) Kernel() *des.Kernel { return rt.k }

// Clock returns the platform's local clock.
func (rt *Runtime) Clock() *des.LocalClock { return rt.clock }

// Addr returns the application endpoint address.
func (rt *Runtime) Addr() someip.Addr { return rt.conn.LocalAddr() }

// simAddr returns the endpoint address in simulated form. Valid only on
// runtimes created with NewRuntime (rt.sd != nil implies this).
func (rt *Runtime) simAddr() simnet.Addr { return rt.conn.LocalAddr().(simnet.Addr) }

// Conn returns the runtime's transport endpoint.
func (rt *Runtime) Conn() someip.Endpoint { return rt.conn }

// SD returns the runtime's service-discovery agent (nil on runtimes
// without an SD substrate, such as UDP runtimes).
func (rt *Runtime) SD() *someip.Agent { return rt.sd }

// Executor returns the runtime's worker pool.
func (rt *Runtime) Executor() *Executor { return rt.exec }

// Rand returns the runtime's random stream.
func (rt *Runtime) Rand() *des.Rand { return rt.rng }

// ConnStats returns the binding's (sent, received, decode error) message
// counters.
func (rt *Runtime) ConnStats() (sent, received, decodeErrors uint64) {
	return rt.conn.Stats()
}

// Close releases the runtime's endpoint. Pending requests never resolve;
// call it only when tearing the process down (primarily for UDP
// runtimes, whose sockets outlive any single kernel run).
func (rt *Runtime) Close() error { return rt.conn.Close() }

// SetBindingHook installs the DEAR binding hook (see BindingHook).
func (rt *Runtime) SetBindingHook(h BindingHook) { rt.hook = h }

// send transmits a message through the (possibly hooked) binding.
// Transmission is best-effort, mirroring the AP stack's lack of a
// delivery guarantee; the returned error reports local failures only
// (closed endpoint, wrong-substrate address, segmentation) — most
// callers drop it, but the proxy uses it to fail calls fast.
func (rt *Runtime) send(dst someip.Addr, m *someip.Message) error {
	if rt.hook != nil {
		rt.hook.Outgoing(m)
	}
	return rt.conn.Send(dst, m)
}

func (rt *Runtime) nextSession() someip.SessionID {
	rt.session++
	if rt.session == 0 {
		rt.session = 1
	}
	return rt.session
}

func (rt *Runtime) handle(src someip.Addr, m *someip.Message) {
	if rt.hook != nil {
		rt.hook.Incoming(src, m)
	}
	switch m.Type {
	case someip.TypeRequest, someip.TypeRequestNoReturn:
		rt.handleRequest(src, m)
	case someip.TypeResponse, someip.TypeError:
		rt.handleResponse(m)
	case someip.TypeNotification:
		rt.handleNotification(m)
	}
}

func (rt *Runtime) handleRequest(src someip.Addr, m *someip.Message) {
	sk, ok := rt.skeletons[m.Service]
	if !ok || !sk.offered {
		rt.reply(src, m, nil, someip.EUnknownService)
		return
	}
	h, ok := sk.handlers[m.Method]
	if !ok {
		rt.reply(src, m, nil, someip.EUnknownMethod)
		return
	}
	req := *m
	// Each invocation is dispatched to a worker thread; ordering is up to
	// the (simulated) scheduler.
	rt.exec.submit(rt, func(c *Ctx) {
		c.msg = &req
		fut := h(c, req.Payload)
		if req.Type == someip.TypeRequestNoReturn {
			return
		}
		fut.Then(func(r Result) {
			code := someip.EOK
			payload := r.Payload
			if r.Err != nil {
				if re, ok := r.Err.(*RemoteError); ok {
					code = re.Code
				} else {
					code = someip.ENotOK
				}
				payload = nil
			}
			rt.replyTagged(src, &req, payload, code, r.Tag)
		})
	})
}

func (rt *Runtime) reply(dst someip.Addr, req *someip.Message, payload []byte, code someip.ReturnCode) {
	rt.replyTagged(dst, req, payload, code, nil)
}

// replyTagged sends a response; tag, when non-nil, rides the modified
// binding's tag trailer (the DEAR server method transactor resolves its
// future with the response tag ts+Ds).
func (rt *Runtime) replyTagged(dst someip.Addr, req *someip.Message, payload []byte, code someip.ReturnCode, tag *logical.Tag) {
	typ := someip.TypeResponse
	if code != someip.EOK {
		typ = someip.TypeError
	}
	rt.send(dst, &someip.Message{
		Service:          req.Service,
		Method:           req.Method,
		Client:           req.Client,
		Session:          req.Session,
		InterfaceVersion: req.InterfaceVersion,
		Type:             typ,
		Code:             code,
		Payload:          payload,
		Tag:              tag,
	})
}

func (rt *Runtime) handleResponse(m *someip.Message) {
	fut, ok := rt.pending[m.Session]
	if !ok {
		return
	}
	delete(rt.pending, m.Session)
	if m.Type == someip.TypeError || m.Code != someip.EOK {
		fut.Resolve(Result{Err: &RemoteError{Code: m.Code}, Tag: m.Tag})
		return
	}
	fut.Resolve(Result{Payload: m.Payload, Tag: m.Tag})
}

func (rt *Runtime) handleNotification(m *someip.Message) {
	handlers := rt.eventSubs[eventKey{m.Service, m.Method}]
	msg := *m
	payload := m.Payload
	for _, h := range handlers {
		h := h
		rt.exec.submit(rt, func(c *Ctx) {
			c.msg = &msg
			h(c, payload)
		})
	}
}

// Spawn starts an application process belonging to this runtime.
func (rt *Runtime) Spawn(name string, body func(*Ctx)) *des.Process {
	return rt.k.Spawn(rt.name+"."+name, func(p *des.Process) {
		body(&Ctx{p: p, rt: rt})
	})
}

// PeriodicHandle stops a periodic callback.
type PeriodicHandle struct{ stopped *bool }

// Stop cancels the periodic callback after the current activation.
func (h *PeriodicHandle) Stop() { *h.stopped = true }

// Every installs a periodic callback driven by the platform's local
// clock, mirroring the APD demonstrator's cyclic OS triggers: the first
// activation happens at local time now+offset, then every period of
// local time. If an activation overruns, missed grid slots are skipped
// (timer semantics).
func (rt *Runtime) Every(offset, period logical.Duration, fn func(*Ctx)) *PeriodicHandle {
	if period <= 0 {
		panic("ara: Every needs a positive period")
	}
	stopped := false
	clk := rt.Clock()
	rt.k.Spawn(rt.name+".periodic", func(p *des.Process) {
		start := clk.Now().Add(offset)
		for n := int64(0); !stopped; {
			next := start.Add(logical.Duration(n) * period)
			// Map the local-time deadline to global simulated time under
			// the clock's current affine segment.
			p.WaitUntil(clk.GlobalAt(next))
			if stopped {
				return
			}
			fn(&Ctx{p: p, rt: rt})
			// Skip any grid slots the activation overran.
			n++
			for clk.Now() >= start.Add(logical.Duration(n)*period) {
				n++
			}
		}
	})
	return &PeriodicHandle{stopped: &stopped}
}
