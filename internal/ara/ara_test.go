package ara

import (
	"encoding/binary"
	"testing"

	"repro/internal/des"
	"repro/internal/logical"
	"repro/internal/simnet"
	"repro/internal/someip"
)

// calcIface is a small test service: a counter with set/add/get methods,
// a tick event, and one field — the Figure 1 shape.
var calcIface = &ServiceInterface{
	Name:  "Calculator",
	ID:    0x1001,
	Major: 1,
	Methods: []MethodSpec{
		{ID: 0x0001, Name: "set_value"},
		{ID: 0x0002, Name: "add"},
		{ID: 0x0003, Name: "get_value"},
		{ID: 0x0004, Name: "log", FireAndForget: true},
	},
	Events: []EventSpec{
		{ID: someip.EventID(1), Name: "tick", Eventgroup: 1},
	},
	Fields: []FieldSpec{
		{Name: "limit", Get: 0x0010, Set: 0x0011, Notifier: someip.EventID(2), Eventgroup: 2},
	},
}

func u32(v uint32) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	return b[:]
}

func decodeU32(b []byte) uint32 {
	if len(b) < 4 {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

type fixture struct {
	k        *des.Kernel
	net      *simnet.Network
	h1, h2   *simnet.Host
	server   *Runtime
	client   *Runtime
	skeleton *Skeleton
	value    uint32
}

// newFixture wires a calc server on h1 and a client runtime on h2 with
// deterministic (zero-jitter, serialized) execution unless cfg overrides.
func newFixture(t *testing.T, seed uint64, serverExec ExecConfig) *fixture {
	t.Helper()
	k := des.NewKernel(seed)
	n := simnet.NewNetwork(k, simnet.Config{})
	h1 := n.AddHost("p1", k.NewLocalClock(des.ClockConfig{}, nil))
	h2 := n.AddHost("p2", k.NewLocalClock(des.ClockConfig{}, nil))
	server, err := NewRuntime(h1, Config{Name: "server", Exec: serverExec})
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewRuntime(h2, Config{Name: "client"})
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{k: k, net: n, h1: h1, h2: h2, server: server, client: client}
	sk, err := server.NewSkeleton(calcIface, 1)
	if err != nil {
		t.Fatal(err)
	}
	f.skeleton = sk
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(sk.Handle("set_value", func(c *Ctx, args []byte) ([]byte, error) {
		f.value = decodeU32(args)
		return nil, nil
	}))
	must(sk.Handle("add", func(c *Ctx, args []byte) ([]byte, error) {
		f.value += decodeU32(args)
		return nil, nil
	}))
	must(sk.Handle("get_value", func(c *Ctx, args []byte) ([]byte, error) {
		return u32(f.value), nil
	}))
	k.At(0, func() { sk.Offer() })
	return f
}

// serialExec gives deterministic single-worker zero-jitter execution.
func serialExec() ExecConfig {
	return ExecConfig{
		Workers:        1,
		DispatchJitter: func(*des.Rand) logical.Duration { return 0 },
		Serialized:     true,
	}
}

func TestMethodCallRoundTrip(t *testing.T) {
	f := newFixture(t, 1, serialExec())
	var got uint32
	var callErr error
	f.client.Spawn("main", func(c *Ctx) {
		px, err := f.client.FindServiceSync(c.Process(), calcIface, 1, logical.Duration(logical.Second))
		if err != nil {
			callErr = err
			return
		}
		if _, err := px.Call("set_value", u32(41)).Get(c.Process()); err != nil {
			callErr = err
			return
		}
		if _, err := px.Call("add", u32(1)).Get(c.Process()); err != nil {
			callErr = err
			return
		}
		res, err := px.Call("get_value", nil).Get(c.Process())
		if err != nil {
			callErr = err
			return
		}
		got = decodeU32(res)
	})
	f.k.Run(logical.Time(10 * logical.Second))
	if callErr != nil {
		t.Fatal(callErr)
	}
	if got != 42 {
		t.Errorf("got %d, want 42 (serialized calls)", got)
	}
}

func TestUnknownMethodReturnsError(t *testing.T) {
	f := newFixture(t, 1, serialExec())
	var err error
	f.client.Spawn("main", func(c *Ctx) {
		px, ferr := f.client.FindServiceSync(c.Process(), calcIface, 1, logical.Duration(logical.Second))
		if ferr != nil {
			err = ferr
			return
		}
		_, err = px.CallID(0x7777, nil, false).Get(c.Process())
	})
	f.k.Run(logical.Time(10 * logical.Second))
	re, ok := err.(*RemoteError)
	if !ok {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if re.Code != someip.EUnknownMethod {
		t.Errorf("code = %v, want E_UNKNOWN_METHOD", re.Code)
	}
}

func TestCallBeforeOfferFails(t *testing.T) {
	k := des.NewKernel(1)
	n := simnet.NewNetwork(k, simnet.Config{})
	h1 := n.AddHost("p1", k.NewLocalClock(des.ClockConfig{}, nil))
	h2 := n.AddHost("p2", k.NewLocalClock(des.ClockConfig{}, nil))
	if _, err := NewRuntime(h1, Config{Name: "server"}); err != nil {
		t.Fatal(err)
	}
	client, err := NewRuntime(h2, Config{Name: "client"})
	if err != nil {
		t.Fatal(err)
	}
	var findErr error
	client.Spawn("main", func(c *Ctx) {
		_, findErr = client.FindServiceSync(c.Process(), calcIface, 1, logical.Duration(100*logical.Millisecond))
	})
	k.Run(logical.Time(logical.Second))
	if findErr == nil {
		t.Error("discovery should time out when nothing is offered")
	}
}

func TestHandlerErrorMapsToReturnCode(t *testing.T) {
	f := newFixture(t, 1, serialExec())
	if err := f.skeleton.Handle("set_value", func(c *Ctx, args []byte) ([]byte, error) {
		return nil, &RemoteError{Code: someip.ENotReady}
	}); err != nil {
		t.Fatal(err)
	}
	var err error
	f.client.Spawn("main", func(c *Ctx) {
		px, ferr := f.client.FindServiceSync(c.Process(), calcIface, 1, logical.Duration(logical.Second))
		if ferr != nil {
			err = ferr
			return
		}
		_, err = px.Call("set_value", u32(1)).Get(c.Process())
	})
	f.k.Run(logical.Time(10 * logical.Second))
	re, ok := err.(*RemoteError)
	if !ok || re.Code != someip.ENotReady {
		t.Errorf("err = %v, want E_NOT_READY", err)
	}
}

func TestFireAndForget(t *testing.T) {
	f := newFixture(t, 1, serialExec())
	logged := 0
	if err := f.skeleton.Handle("log", func(c *Ctx, args []byte) ([]byte, error) {
		logged++
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	f.client.Spawn("main", func(c *Ctx) {
		px, err := f.client.FindServiceSync(c.Process(), calcIface, 1, logical.Duration(logical.Second))
		if err != nil {
			t.Error(err)
			return
		}
		fut := px.Call("log", []byte("hi"))
		if !fut.Done() {
			t.Error("fire&forget future should resolve immediately")
		}
	})
	f.k.Run(logical.Time(10 * logical.Second))
	if logged != 1 {
		t.Errorf("logged = %d, want 1", logged)
	}
}

func TestEventSubscribeNotify(t *testing.T) {
	f := newFixture(t, 1, serialExec())
	var got []uint32
	f.client.Spawn("main", func(c *Ctx) {
		px, err := f.client.FindServiceSync(c.Process(), calcIface, 1, logical.Duration(logical.Second))
		if err != nil {
			t.Error(err)
			return
		}
		acked := false
		if err := px.Subscribe("tick", func(c *Ctx, payload []byte) {
			got = append(got, decodeU32(payload))
		}, func(ok bool) { acked = ok }); err != nil {
			t.Error(err)
			return
		}
		// Wait for the ack, then trigger three notifications.
		for !acked {
			c.Exec(logical.Duration(10 * logical.Millisecond))
		}
		for i := uint32(1); i <= 3; i++ {
			f.skeleton.NotifyID(someip.EventID(1), 1, u32(i))
			c.Exec(logical.Duration(10 * logical.Millisecond))
		}
	})
	f.k.Run(logical.Time(10 * logical.Second))
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("got = %v, want [1 2 3]", got)
	}
}

func TestNotifyWithoutSubscribersIsNoop(t *testing.T) {
	f := newFixture(t, 1, serialExec())
	f.k.At(logical.Time(logical.Millisecond), func() {
		f.skeleton.NotifyID(someip.EventID(1), 1, u32(9))
	})
	f.k.Run(logical.Time(logical.Second)) // must not panic or deliver anywhere
}

func TestFieldGetSetNotify(t *testing.T) {
	f := newFixture(t, 1, serialExec())
	srvField, err := f.skeleton.Field("limit")
	if err != nil {
		t.Fatal(err)
	}
	srvField.Update(u32(100))

	var observed []uint32
	var got uint32
	var setBack uint32
	f.client.Spawn("main", func(c *Ctx) {
		px, err := f.client.FindServiceSync(c.Process(), calcIface, 1, logical.Duration(logical.Second))
		if err != nil {
			t.Error(err)
			return
		}
		fc, err := px.Field("limit")
		if err != nil {
			t.Error(err)
			return
		}
		if err := fc.OnChange(func(c *Ctx, payload []byte) {
			observed = append(observed, decodeU32(payload))
		}, nil); err != nil {
			t.Error(err)
			return
		}
		c.Exec(logical.Duration(50 * logical.Millisecond)) // let subscription settle
		v, err := fc.GetSync(c.Process())
		if err != nil {
			t.Error(err)
			return
		}
		got = decodeU32(v)
		v2, err := fc.SetSync(c.Process(), u32(250))
		if err != nil {
			t.Error(err)
			return
		}
		setBack = decodeU32(v2)
	})
	f.k.Run(logical.Time(10 * logical.Second))
	if got != 100 {
		t.Errorf("Get = %d, want 100", got)
	}
	if setBack != 250 {
		t.Errorf("Set response = %d, want 250", setBack)
	}
	if len(observed) == 0 || observed[len(observed)-1] != 250 {
		t.Errorf("notifier observed %v, want trailing 250", observed)
	}
	if decodeU32(srvField.Value()) != 250 {
		t.Errorf("server value = %d", decodeU32(srvField.Value()))
	}
}

func TestFieldValidatorRejectsSet(t *testing.T) {
	f := newFixture(t, 1, serialExec())
	srvField, _ := f.skeleton.Field("limit")
	srvField.Update(u32(1))
	srvField.SetValidator(func(proposed []byte) error {
		if decodeU32(proposed) > 10 {
			return &RemoteError{Code: someip.ENotOK}
		}
		return nil
	})
	var err error
	f.client.Spawn("main", func(c *Ctx) {
		px, ferr := f.client.FindServiceSync(c.Process(), calcIface, 1, logical.Duration(logical.Second))
		if ferr != nil {
			err = ferr
			return
		}
		fc, _ := px.Field("limit")
		_, err = fc.SetSync(c.Process(), u32(11))
	})
	f.k.Run(logical.Time(10 * logical.Second))
	if err == nil {
		t.Error("validator should have rejected the set")
	}
	if decodeU32(srvField.Value()) != 1 {
		t.Errorf("value changed to %d despite rejection", decodeU32(srvField.Value()))
	}
}

// TestNonBlockingCallsNondeterministic reproduces the mechanism of
// Figure 1: three non-blocking calls processed by a multi-threaded server
// yield different results for different scheduler seeds.
func TestNonBlockingCallsNondeterministic(t *testing.T) {
	run := func(seed uint64) uint32 {
		k := des.NewKernel(seed)
		n := simnet.NewNetwork(k, simnet.Config{})
		h1 := n.AddHost("p1", k.NewLocalClock(des.ClockConfig{}, nil))
		h2 := n.AddHost("p2", k.NewLocalClock(des.ClockConfig{}, nil))
		server, _ := NewRuntime(h1, Config{Name: "server", Exec: ExecConfig{
			Workers:    4,
			Serialized: true, // mutual exclusion, but order is up to dispatch
		}})
		client, _ := NewRuntime(h2, Config{Name: "client"})
		var value uint32
		sk, _ := server.NewSkeleton(calcIface, 1)
		_ = sk.Handle("set_value", func(c *Ctx, args []byte) ([]byte, error) {
			value = decodeU32(args)
			return nil, nil
		})
		_ = sk.Handle("add", func(c *Ctx, args []byte) ([]byte, error) {
			value += decodeU32(args)
			return nil, nil
		})
		_ = sk.Handle("get_value", func(c *Ctx, args []byte) ([]byte, error) {
			return u32(value), nil
		})
		k.At(0, func() { sk.Offer() })
		var result uint32
		client.Spawn("main", func(c *Ctx) {
			px, err := client.FindServiceSync(c.Process(), calcIface, 1, logical.Duration(logical.Second))
			if err != nil {
				t.Error(err)
				return
			}
			// Non-blocking: issue all three, then wait only for the last.
			px.Call("set_value", u32(1))
			px.Call("add", u32(2))
			res, err := px.Call("get_value", nil).Get(c.Process())
			if err == nil {
				result = decodeU32(res)
			}
		})
		k.Run(logical.Time(10 * logical.Second))
		return result
	}
	seen := map[uint32]bool{}
	for seed := uint64(0); seed < 40; seed++ {
		v := run(seed)
		if v > 3 {
			t.Fatalf("impossible value %d", v)
		}
		seen[v] = true
	}
	if len(seen) < 3 {
		t.Errorf("only saw values %v across seeds; expected nondeterministic spread", seen)
	}
	// Same seed must reproduce exactly.
	if run(7) != run(7) {
		t.Error("same seed gave different results")
	}
}

func TestSerializedBlockingCallsAlwaysDeterministic(t *testing.T) {
	// The Figure 1 fix: wait for each future before the next call. The
	// result must be 3 for every seed even with a jittery multi-thread
	// executor.
	for seed := uint64(0); seed < 10; seed++ {
		f := newFixture(t, seed, ExecConfig{Workers: 4, Serialized: true})
		var got uint32
		f.client.Spawn("main", func(c *Ctx) {
			px, err := f.client.FindServiceSync(c.Process(), calcIface, 1, logical.Duration(logical.Second))
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := px.Call("set_value", u32(1)).Get(c.Process()); err != nil {
				t.Error(err)
			}
			if _, err := px.Call("add", u32(2)).Get(c.Process()); err != nil {
				t.Error(err)
			}
			res, err := px.Call("get_value", nil).Get(c.Process())
			if err != nil {
				t.Error(err)
			}
			got = decodeU32(res)
		})
		f.k.Run(logical.Time(10 * logical.Second))
		if got != 3 {
			t.Errorf("seed %d: got %d, want 3", seed, got)
		}
	}
}

func TestTwoClientsShareServer(t *testing.T) {
	f := newFixture(t, 1, serialExec())
	client2, err := NewRuntime(f.h2, Config{Name: "client2"})
	if err != nil {
		t.Fatal(err)
	}
	results := map[string]uint32{}
	mk := func(rt *Runtime, name string, v uint32) {
		rt.Spawn("main", func(c *Ctx) {
			px, err := rt.FindServiceSync(c.Process(), calcIface, 1, logical.Duration(logical.Second))
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := px.Call("add", u32(v)).Get(c.Process()); err != nil {
				t.Error(err)
				return
			}
			res, err := px.Call("get_value", nil).Get(c.Process())
			if err != nil {
				t.Error(err)
				return
			}
			results[name] = decodeU32(res)
		})
	}
	mk(f.client, "c1", 10)
	mk(client2, "c2", 100)
	f.k.Run(logical.Time(10 * logical.Second))
	if len(results) != 2 {
		t.Fatalf("results = %v", results)
	}
	if f.value != 110 {
		t.Errorf("final value = %d, want 110", f.value)
	}
}

func TestPeriodicCallback(t *testing.T) {
	k := des.NewKernel(1)
	n := simnet.NewNetwork(k, simnet.Config{})
	h := n.AddHost("p", k.NewLocalClock(des.ClockConfig{}, nil))
	rt, err := NewRuntime(h, Config{Name: "swc"})
	if err != nil {
		t.Fatal(err)
	}
	var times []logical.Time
	rt.Every(logical.Duration(5*logical.Millisecond), logical.Duration(50*logical.Millisecond), func(c *Ctx) {
		times = append(times, c.Now())
	})
	k.Run(logical.Time(240 * logical.Millisecond))
	// Activations at 5, 55, 105, 155, 205 ms.
	if len(times) != 5 {
		t.Fatalf("activations = %d (%v)", len(times), times)
	}
	for i, want := range []int64{5, 55, 105, 155, 205} {
		if times[i] != logical.Time(want)*logical.Time(logical.Millisecond) {
			t.Errorf("activation %d at %v, want %dms", i, times[i], want)
		}
	}
}

func TestPeriodicCallbackSkipsOverruns(t *testing.T) {
	k := des.NewKernel(1)
	n := simnet.NewNetwork(k, simnet.Config{})
	h := n.AddHost("p", k.NewLocalClock(des.ClockConfig{}, nil))
	rt, _ := NewRuntime(h, Config{Name: "swc"})
	var times []logical.Time
	first := true
	rt.Every(0, logical.Duration(10*logical.Millisecond), func(c *Ctx) {
		times = append(times, c.Now())
		if first {
			first = false
			c.Exec(logical.Duration(25 * logical.Millisecond)) // overrun two slots
		}
	})
	k.Run(logical.Time(45 * logical.Millisecond))
	// Activations: 0 (runs to 25ms), then next grid slot 30, then 40.
	if len(times) != 3 {
		t.Fatalf("activations = %v", times)
	}
	want := []int64{0, 30, 40}
	for i := range want {
		if times[i] != logical.Time(want[i])*logical.Time(logical.Millisecond) {
			t.Errorf("activation %d at %v, want %dms", i, times[i], want[i])
		}
	}
}

func TestPeriodicFollowsLocalClockDrift(t *testing.T) {
	k := des.NewKernel(1)
	n := simnet.NewNetwork(k, simnet.Config{})
	// 1% fast local clock: 10ms local period ≈ 9.90ms global.
	h := n.AddHost("p", k.NewLocalClock(des.ClockConfig{DriftPPB: 10_000_000}, nil))
	rt, _ := NewRuntime(h, Config{Name: "swc"})
	var times []logical.Time
	rt.Every(0, logical.Duration(10*logical.Millisecond), func(c *Ctx) {
		times = append(times, c.Now())
	})
	k.Run(logical.Time(100 * logical.Millisecond))
	if len(times) < 10 {
		t.Fatalf("activations = %d", len(times))
	}
	// The second activation should be earlier than 10ms of global time.
	gap := times[1] - times[0]
	if gap >= logical.Time(10*logical.Millisecond) {
		t.Errorf("gap = %v, want < 10ms for a fast clock", logical.Duration(gap))
	}
	if gap < logical.Time(9800*logical.Microsecond) {
		t.Errorf("gap = %v, implausibly small", logical.Duration(gap))
	}
}

func TestPeriodicStop(t *testing.T) {
	k := des.NewKernel(1)
	n := simnet.NewNetwork(k, simnet.Config{})
	h := n.AddHost("p", k.NewLocalClock(des.ClockConfig{}, nil))
	rt, _ := NewRuntime(h, Config{Name: "swc"})
	count := 0
	var h2 *PeriodicHandle
	h2 = rt.Every(0, logical.Duration(10*logical.Millisecond), func(c *Ctx) {
		count++
		if count == 3 {
			h2.Stop()
		}
	})
	k.Run(logical.Time(logical.Second))
	if count != 3 {
		t.Errorf("count = %d, want 3", count)
	}
}

func TestValidateCatchesBadInterfaces(t *testing.T) {
	bad := []*ServiceInterface{
		{Name: "zero-id", ID: 0},
		{Name: "sd-id", ID: someip.SDService},
		{Name: "event-method", ID: 1, Methods: []MethodSpec{{ID: someip.EventID(1), Name: "m"}}},
		{Name: "plain-event", ID: 1, Events: []EventSpec{{ID: 5, Name: "e"}}},
		{Name: "dup", ID: 1, Methods: []MethodSpec{{ID: 1, Name: "a"}, {ID: 1, Name: "b"}}},
		{Name: "field-evt-get", ID: 1, Fields: []FieldSpec{{Name: "f", Get: someip.EventID(1)}}},
		{Name: "field-plain-notifier", ID: 1, Fields: []FieldSpec{{Name: "f", Notifier: 5}}},
	}
	for _, si := range bad {
		if err := si.Validate(); err == nil {
			t.Errorf("%s: want validation error", si.Name)
		}
	}
	if err := calcIface.Validate(); err != nil {
		t.Errorf("calcIface should validate: %v", err)
	}
}

func TestInterfaceLookups(t *testing.T) {
	if _, ok := calcIface.Method("set_value"); !ok {
		t.Error("Method lookup failed")
	}
	if _, ok := calcIface.Method("nope"); ok {
		t.Error("Method lookup false positive")
	}
	if _, ok := calcIface.Event("tick"); !ok {
		t.Error("Event lookup failed")
	}
	if _, ok := calcIface.Field("limit"); !ok {
		t.Error("Field lookup failed")
	}
	if e, ok := calcIface.EventByID(someip.EventID(1)); !ok || e.Name != "tick" {
		t.Error("EventByID lookup failed")
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	k := des.NewKernel(1)
	m := NewMutex()
	var order []string
	inside := 0
	body := func(name string, hold logical.Duration) func(p *des.Process) {
		return func(p *des.Process) {
			m.Lock(p)
			inside++
			if inside != 1 {
				t.Error("mutual exclusion violated")
			}
			order = append(order, name)
			p.Sleep(hold)
			inside--
			m.Unlock()
		}
	}
	k.Spawn("a", body("a", 10))
	k.Spawn("b", body("b", 10))
	k.Spawn("c", body("c", 10))
	k.RunAll()
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	if order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Errorf("FIFO order violated: %v", order)
	}
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	k := des.NewKernel(1)
	s := NewSemaphore(2)
	inside, peak := 0, 0
	for i := 0; i < 5; i++ {
		k.Spawn("w", func(p *des.Process) {
			s.Acquire(p)
			inside++
			if inside > peak {
				peak = inside
			}
			p.Sleep(10)
			inside--
			s.Release()
		})
	}
	k.RunAll()
	if peak != 2 {
		t.Errorf("peak concurrency = %d, want 2", peak)
	}
}

func TestFutureThenAndResolvedFuture(t *testing.T) {
	k := des.NewKernel(1)
	fut := NewFuture(k)
	var got []string
	fut.Then(func(r Result) { got = append(got, string(r.Payload)) })
	k.At(10, func() { fut.Resolve(Result{Payload: []byte("x")}) })
	k.RunAll()
	if len(got) != 1 || got[0] != "x" {
		t.Errorf("got = %v", got)
	}
	// Then on resolved future fires too.
	fut.Then(func(r Result) { got = append(got, "again") })
	k.RunAll()
	if len(got) != 2 {
		t.Errorf("got = %v", got)
	}
	// Double resolve ignored.
	fut.Resolve(Result{Payload: []byte("y")})
	if string(fut.result.Payload) != "x" {
		t.Error("second resolve overwrote result")
	}
	rf := ResolvedFuture(k, Result{Payload: []byte("z")})
	if !rf.Done() {
		t.Error("ResolvedFuture not done")
	}
}

func TestFutureGetTimeout(t *testing.T) {
	k := des.NewKernel(1)
	fut := NewFuture(k)
	var err error
	k.Spawn("w", func(p *des.Process) {
		_, err = fut.GetTimeout(p, logical.Duration(50*logical.Millisecond))
	})
	k.RunAll()
	if err != ErrTimeout {
		t.Errorf("err = %v, want ErrTimeout", err)
	}
	// Late resolve after timeout is harmless.
	fut.Resolve(Result{Payload: []byte("late")})
	k.RunAll()
}

func TestExecutorCounters(t *testing.T) {
	k := des.NewKernel(1)
	e := NewExecutor(k, des.NewRand(1), ExecConfig{Workers: 2, DispatchJitter: func(*des.Rand) logical.Duration { return 0 }})
	for i := 0; i < 5; i++ {
		e.Submit(func(c *Ctx) { c.Exec(10) })
	}
	if e.InFlight() != 5 {
		t.Errorf("in flight = %d", e.InFlight())
	}
	k.RunAll()
	if e.Executed() != 5 || e.InFlight() != 0 {
		t.Errorf("executed = %d, inflight = %d", e.Executed(), e.InFlight())
	}
}
