package ara

import (
	"testing"

	"repro/internal/des"
	"repro/internal/logical"
	"repro/internal/simnet"
	"repro/internal/someip"
)

// buildCalcServer creates a runtime offering calcIface on the host with
// an always-succeeding get_value handler returning v.
func buildCalcServer(t *testing.T, host *simnet.Host, name string, v uint32) *Runtime {
	t.Helper()
	rt, err := NewRuntime(host, Config{
		Name: name,
		Port: 40000,
		SD:   sdShortTTL(),
		Exec: ExecConfig{Workers: 1, Serialized: true, DispatchJitter: func(*des.Rand) logical.Duration { return 0 }},
	})
	if err != nil {
		t.Fatal(err)
	}
	sk, err := rt.NewSkeleton(calcIface, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sk.Handle("get_value", func(c *Ctx, args []byte) ([]byte, error) {
		return u32(v), nil
	}); err != nil {
		t.Fatal(err)
	}
	sk.Offer()
	return rt
}

// sdShortTTL configures SD with a short TTL kept alive by cyclic
// refreshes: a live provider never expires, a crashed (silent) one
// expires within a second of its last refresh.
func sdShortTTL() someip.AgentConfig {
	return someip.AgentConfig{CyclicOfferPeriod: 300 * logical.Millisecond, TTL: logical.Second}
}

// End-to-end re-bind across a provider crash: the client's WatchService
// proxy works, goes down on TTL expiry after the silent crash, and a
// fresh proxy from the restarted provider answers with the new state.
func TestWatchServiceRebindsAcrossCrashRestart(t *testing.T) {
	k := des.NewKernel(3)
	n := simnet.NewNetwork(k, simnet.Config{})
	h1 := n.AddHost("server", k.NewLocalClock(des.ClockConfig{}, nil))
	h2 := n.AddHost("client", k.NewLocalClock(des.ClockConfig{}, nil))

	client, err := NewRuntime(h2, Config{Name: "client", SD: sdShortTTL()})
	if err != nil {
		t.Fatal(err)
	}

	var px *Proxy
	downs, ups := 0, 0
	k.At(0, func() {
		buildCalcServer(t, h1, "server1", 41)
		client.WatchService(calcIface, 1,
			func(p *Proxy) { ups++; px = p },
			func() { downs++; px = nil })
	})

	var beforeCrash, duringOutage, afterRestart uint32
	var outageErr error
	probe := func(out *uint32) func(c *Ctx) {
		return func(c *Ctx) {
			if px == nil {
				return
			}
			r, err := px.Call("get_value", nil).GetTimeout(c.Process(), 500*logical.Millisecond)
			if err != nil {
				outageErr = err
				return
			}
			*out = decodeU32(r)
		}
	}
	client.Spawn("probe1", func(c *Ctx) {
		c.Exec(100 * logical.Millisecond)
		probe(&beforeCrash)(c)
	})

	h1.Crash(logical.Time(500 * logical.Millisecond))
	client.Spawn("probe2", func(c *Ctx) {
		c.Exec(800 * logical.Millisecond) // inside the outage, before expiry
		probe(&duringOutage)(c)
	})
	h1.Restart(logical.Time(3*logical.Second), func() {
		buildCalcServer(t, h1, "server2", 42)
	})
	client.Spawn("probe3", func(c *Ctx) {
		c.Exec(4 * logical.Second)
		probe(&afterRestart)(c)
	})

	k.Run(logical.Time(6 * logical.Second))
	k.Shutdown()

	if beforeCrash != 41 {
		t.Fatalf("pre-crash call = %d, want 41", beforeCrash)
	}
	if duringOutage != 0 || outageErr == nil {
		t.Fatalf("outage call: got %d err %v, want timeout", duringOutage, outageErr)
	}
	if downs != 1 {
		t.Fatalf("downs = %d, want one TTL expiry", downs)
	}
	if ups != 2 {
		t.Fatalf("ups = %d, want initial + post-restart", ups)
	}
	if afterRestart != 42 {
		t.Fatalf("post-restart call = %d, want the restarted provider's 42", afterRestart)
	}
}
