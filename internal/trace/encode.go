package trace

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/logical"
)

// Binary trace file layout (all integers big-endian):
//
//	magic "DTRC" | version u8 | truncated u64 | count u32 | records...
//
// each record:
//
//	time i64 | seq u64 | digest u64 |
//	len(component) u16 | component | len(kind) u16 | kind |
//	len(src) u16 | src | hasData u8 [| len(data) u32 | data]
//
// The encoding is a pure function of the record sequence: two traces
// encode identically iff they are identical, which is what lets the
// mode-independence property tests compare traces as byte strings.
const (
	traceMagic   = "DTRC"
	traceVersion = 1
)

// ErrBadTrace reports a malformed or truncated binary trace.
var ErrBadTrace = fmt.Errorf("trace: malformed trace encoding")

func putString(buf []byte, s string) []byte {
	if len(s) > 0xffff {
		// Silent truncation would break "identical encodings iff
		// identical traces"; no sane component/kind/src label comes
		// within orders of magnitude of the limit.
		panic(fmt.Sprintf("trace: string field of %d bytes exceeds the encoding limit (65535)", len(s)))
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

// Encode renders the trace in the deterministic binary format.
func (t *Trace) Encode() []byte {
	buf := make([]byte, 0, 64+len(t.Records)*48)
	buf = append(buf, traceMagic...)
	buf = append(buf, traceVersion)
	buf = binary.BigEndian.AppendUint64(buf, t.Truncated)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(t.Records)))
	for i := range t.Records {
		r := &t.Records[i]
		buf = binary.BigEndian.AppendUint64(buf, uint64(r.Time))
		buf = binary.BigEndian.AppendUint64(buf, r.Seq)
		buf = binary.BigEndian.AppendUint64(buf, r.Digest)
		buf = putString(buf, r.Component)
		buf = putString(buf, r.Kind)
		buf = putString(buf, r.Src)
		if r.Data == nil {
			buf = append(buf, 0)
		} else {
			buf = append(buf, 1)
			buf = binary.BigEndian.AppendUint32(buf, uint32(len(r.Data)))
			buf = append(buf, r.Data...)
		}
	}
	return buf
}

type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) take(n int) []byte {
	if d.err != nil || d.off+n > len(d.buf) {
		if d.err == nil {
			d.err = ErrBadTrace
		}
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (d *decoder) str() string { return string(d.take(int(d.u16()))) }

// Decode parses a binary trace produced by Encode.
func Decode(data []byte) (*Trace, error) {
	d := &decoder{buf: data}
	if string(d.take(len(traceMagic))) != traceMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadTrace)
	}
	if v := d.u8(); v != traceVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadTrace, v)
	}
	t := &Trace{Truncated: d.u64()}
	count := int(d.u32())
	for i := 0; i < count && d.err == nil; i++ {
		var r Record
		r.Time = logical.Time(d.u64())
		r.Seq = d.u64()
		r.Digest = d.u64()
		r.Component = d.str()
		r.Kind = d.str()
		r.Src = d.str()
		if d.u8() != 0 {
			n := int(d.u32())
			if b := d.take(n); b != nil {
				r.Data = append([]byte(nil), b...)
			}
		}
		t.Records = append(t.Records, r)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadTrace, len(data)-d.off)
	}
	return t, nil
}

// EncodeJSON renders the trace as indented JSON (stored input bytes
// appear base64-encoded, per encoding/json's []byte convention).
func (t *Trace) EncodeJSON() ([]byte, error) {
	return json.MarshalIndent(t, "", "  ")
}

// DecodeJSON parses a JSON trace produced by EncodeJSON.
func DecodeJSON(data []byte) (*Trace, error) {
	var t Trace
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("trace: parsing JSON trace: %w", err)
	}
	return &t, nil
}

// WriteFile persists the trace to path in the binary format.
func WriteFile(path string, t *Trace) error {
	if err := os.WriteFile(path, t.Encode(), 0o644); err != nil {
		return fmt.Errorf("trace: writing %s: %w", path, err)
	}
	return nil
}

// ReadFile loads a binary trace file written by WriteFile.
func ReadFile(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("trace: reading %s: %w", path, err)
	}
	return Decode(data)
}
