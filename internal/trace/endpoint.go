package trace

import (
	"errors"
	"fmt"

	"repro/internal/des"
	"repro/internal/logical"
	"repro/internal/someip"
)

// RecordingEndpoint wraps a someip.Endpoint and records every message
// crossing it: inbound messages are captured in full (marshaled
// bytes, sender address — the tagged inputs a replay re-injects) and
// outbound messages as digests (the outputs a replay must reproduce).
// It is installed at runtime construction through
// ara.Config.WrapEndpoint, which is how a live ara.NewUDPRuntime run
// becomes a recorded artifact without touching the runtime.
//
// now supplies record timestamps; for live runs pass the real-time
// driver's Elapsed, for simulated runtimes the kernel's Now. Inbound
// records are written from the transport's handler context (the
// socket-reader goroutine on UDP), outbound records from the sending
// kernel goroutine — the Recorder is safe for both.
type RecordingEndpoint struct {
	inner     someip.Endpoint
	rec       *Recorder
	component string
	now       func() logical.Time
	buf       []byte // outbound marshal scratch, reused across Sends
}

// NewRecordingEndpoint wraps inner so that traffic is recorded into
// rec under the given component label.
func NewRecordingEndpoint(inner someip.Endpoint, rec *Recorder, component string, now func() logical.Time) *RecordingEndpoint {
	return &RecordingEndpoint{inner: inner, rec: rec, component: component, now: now}
}

// Send records the outbound message (digest of its full marshaled
// form, tag trailer included) and forwards it to the wrapped
// endpoint.
func (e *RecordingEndpoint) Send(dst someip.Addr, m *someip.Message) error {
	n := m.WireSize()
	if cap(e.buf) < n {
		e.buf = make([]byte, n)
	}
	b := e.buf[:n]
	m.MarshalTo(b)
	e.rec.TraceEvent(e.now(), e.component, KindSend, b)
	return e.inner.Send(dst, m)
}

// OnMessage installs the inbound handler, capturing each message in
// full (re-marshaled, so the stored bytes are exactly what a tagged
// binding would put on the wire) before handing it on.
func (e *RecordingEndpoint) OnMessage(fn func(src someip.Addr, m *someip.Message)) {
	e.inner.OnMessage(func(src someip.Addr, m *someip.Message) {
		// Marshal returns a fresh buffer, so the recorder can take
		// ownership instead of copying a second time.
		e.rec.recordInputOwned(e.now(), e.component, KindRecv, src.String(), m.Marshal())
		fn(src, m)
	})
}

// OnError forwards to the wrapped endpoint.
func (e *RecordingEndpoint) OnError(fn func(src someip.Addr, err error)) { e.inner.OnError(fn) }

// LocalAddr returns the wrapped endpoint's address.
func (e *RecordingEndpoint) LocalAddr() someip.Addr { return e.inner.LocalAddr() }

// Tagged reports the wrapped endpoint's tag support.
func (e *RecordingEndpoint) Tagged() bool { return e.inner.Tagged() }

// Stats returns the wrapped endpoint's counters.
func (e *RecordingEndpoint) Stats() (sent, received, decodeErrors uint64) { return e.inner.Stats() }

// Close closes the wrapped endpoint.
func (e *RecordingEndpoint) Close() error { return e.inner.Close() }

// replayAddr is the substrate-independent address of a replayed peer:
// the string form of the address recorded at capture time, on the
// synthetic "replay" network.
type replayAddr string

// Network names the replay substrate.
func (a replayAddr) Network() string { return "replay" }

// String returns the recorded peer address.
func (a replayAddr) String() string { return string(a) }

// Replayer is a someip.Endpoint that replays a recorded trace into a
// fresh simulated kernel: every stored input record is re-injected as
// a kernel event at (a strictly increasing version of) its recorded
// time, and every outbound send is captured into an output recorder
// for comparison against the recorded run. Build a runtime over it
// with ara.NewEndpointRuntime, register the same service handlers the
// recorded run used, call Start, then run the kernel — the paper's
// pure-function claim says the replayed outputs must match the
// recorded ones (compare with FirstDivergence on WithoutTimes
// traces).
type Replayer struct {
	k      *des.Kernel
	inputs []Record
	out    *Recorder
	buf    []byte

	handler  func(src someip.Addr, m *someip.Message)
	closed   bool
	started  bool
	sent     uint64
	received uint64
}

// NewReplayer creates a replayer that will inject recorded's stored
// input records into k and capture outputs into out.
func NewReplayer(k *des.Kernel, recorded *Trace, out *Recorder) *Replayer {
	r := &Replayer{k: k, out: out}
	for i := range recorded.Records {
		if recorded.Records[i].Data != nil {
			r.inputs = append(r.inputs, recorded.Records[i])
		}
	}
	return r
}

// Inputs returns the number of stored input records the replayer will
// inject.
func (r *Replayer) Inputs() int { return len(r.inputs) }

// Start decodes every stored input and schedules its injection. The
// installed message handler (the runtime's receive path) runs as a
// kernel event per input, exactly as a simulated transport would
// deliver it. Injection times are made strictly increasing so two
// inputs recorded at the same wall nanosecond keep their capture
// order. Start must be called after the runtime is built (so the
// handler is installed) and before the kernel runs.
func (r *Replayer) Start() error {
	if r.started {
		return errors.New("trace: Replayer.Start called twice")
	}
	r.started = true
	last := logical.Time(-1)
	for i := range r.inputs {
		rec := &r.inputs[i]
		m, err := someip.UnmarshalTagged(rec.Data)
		if err != nil {
			return fmt.Errorf("trace: replay input #%d (%s): %w", i, rec.Component, err)
		}
		at := rec.Time
		if at <= last {
			at = last + 1
		}
		last = at
		src := replayAddr(rec.Src)
		component := rec.Component
		kind := rec.Kind
		data := rec.Data
		r.k.At(at, func() {
			// Re-record the injected input so the replayed trace is
			// comparable to the recorded one record-for-record.
			r.out.RecordInput(r.k.Now(), component, kind, string(src), data)
			r.received++
			if r.handler != nil && !r.closed {
				r.handler(src, m)
			}
		})
	}
	return nil
}

// Send captures the outbound message into the output recorder; the
// replay substrate has no wire, so nothing is transmitted. The digest
// covers the full marshaled message, tag trailer included — the same
// bytes the recorded run digested.
func (r *Replayer) Send(dst someip.Addr, m *someip.Message) error {
	if r.closed {
		return errors.New("trace: send on closed Replayer")
	}
	n := m.WireSize()
	if cap(r.buf) < n {
		r.buf = make([]byte, n)
	}
	b := r.buf[:n]
	m.MarshalTo(b)
	component := componentOf(r.inputs)
	r.out.TraceEvent(r.k.Now(), component, KindSend, b)
	r.sent++
	return nil
}

// componentOf returns the component label the replayed inputs were
// recorded under (a replayed endpoint serves one component).
func componentOf(inputs []Record) string {
	if len(inputs) > 0 {
		return inputs[0].Component
	}
	return "replay"
}

// OnMessage installs the handler injected inputs are delivered to.
func (r *Replayer) OnMessage(fn func(src someip.Addr, m *someip.Message)) { r.handler = fn }

// OnError is accepted for interface compatibility; a replayer decodes
// inputs in Start and never produces inbound decode errors.
func (r *Replayer) OnError(fn func(src someip.Addr, err error)) {}

// LocalAddr returns the synthetic replay address.
func (r *Replayer) LocalAddr() someip.Addr { return replayAddr("replay") }

// Tagged reports tag support: replay always runs the modified
// (tag-aware) binding, since the point is replaying tagged inputs.
func (r *Replayer) Tagged() bool { return true }

// Stats returns (outputs captured, inputs injected so far, 0).
func (r *Replayer) Stats() (sent, received, decodeErrors uint64) {
	return r.sent, r.received, 0
}

// Close stops delivery of further injections and rejects sends.
func (r *Replayer) Close() error {
	r.closed = true
	return nil
}

// Replayer and RecordingEndpoint are transport seams.
var (
	_ someip.Endpoint = (*RecordingEndpoint)(nil)
	_ someip.Endpoint = (*Replayer)(nil)
)
