// Package trace is the deterministic trace subsystem: a first-class,
// inspectable representation of "what the run did" that turns the
// repo's determinism gates from byte-equality oracles into localized
// diagnoses, and the paper's pure-function claim into a replayable
// artifact.
//
// Three capabilities layer on the existing seams:
//
//   - Recording. A Recorder attaches to a des.Kernel (one per
//     partition kernel under a des.Federation) through the kernel's
//     Tracer hook and captures logical events — (logical time,
//     per-component sequence number, component label, event kind,
//     payload digest) — into a pooled ring buffer. The canonical
//     merged trace of a run is byte-identical across GOMAXPROCS
//     values and partition counts: records carry no kernel-global
//     state, and Merge orders them by (time, component, sequence), a
//     total order every execution mode agrees on.
//
//   - Divergence diagnosis. FirstDivergence(a, b) names the first
//     event at which two traces disagree — time, component, kind,
//     digest — so a failing determinism gate can say *where* two runs
//     parted instead of dumping two unequal reports.
//
//   - Record/replay. RecordingEndpoint captures the tagged inputs of
//     a live (real-socket) run at the someip.Endpoint seam, a trace
//     file persists them, and Replayer re-injects them into a fresh
//     simulated kernel — the DEAR application, being a pure function
//     of its tagged inputs, must reproduce the recorded outputs.
//
// Traces have two interchangeable encodings: a deterministic binary
// format (Encode/Decode, WriteFile/ReadFile) for artifacts and CI,
// and JSON (EncodeJSON/DecodeJSON) for human inspection. Payloads are
// digested, not stored, except for records captured as re-injectable
// inputs (RecordInput, RecordingEndpoint's receive path), which keep
// the full marshaled bytes — replay needs them.
package trace

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/logical"
)

// Event kinds used by the built-in instrumentation. Kinds are open —
// any string works — but the endpoint wrappers and the scenario
// engine agree on these.
const (
	// KindRecv marks an inbound message captured at an endpoint seam.
	// Recv records store the full marshaled message so it can be
	// re-injected by a Replayer.
	KindRecv = "recv"
	// KindSend marks an outbound message at an endpoint seam
	// (digest-only).
	KindSend = "send"
	// KindCall marks a completed client call in the scenario engine.
	KindCall = "call"
	// KindCallErr marks an observable client-call failure.
	KindCallErr = "call-err"
	// KindServe marks a served compute invocation.
	KindServe = "serve"
	// KindNoise marks a delivered local-load datagram in the scenario
	// engine (its record time carries the seeded delivery timing).
	KindNoise = "noise"
	// KindReq marks a client call issuance in the scenario engine — the
	// open side of the request/response pair the responded-within
	// monitor matches against a later KindCall or KindCallErr of the
	// same component.
	KindReq = "req"
	// KindCrash marks a platform going down (the open side of a
	// lifecycle obligation).
	KindCrash = "crash"
	// KindRestart marks a crashed platform coming back up.
	KindRestart = "restart"
	// KindBind marks a platform's service (re-)offer — the event that
	// discharges a rebound-within obligation.
	KindBind = "bind"
	// KindCorrupt marks an input that failed an integrity check. The
	// DEAR model refuses corrupt inputs structurally, so a correct run
	// never emits one; the no-silent-corruption monitor watches for the
	// sentinel.
	KindCorrupt = "corrupt"
)

// Record is one logical event of a trace. Records are mode-
// independent by construction: every field is a pure function of the
// emitting component's own behaviour — logical time, the component's
// private sequence counter, the event kind and the payload digest —
// never of kernel-global counters (event sequence numbers, partition
// ids), which differ between execution modes.
type Record struct {
	// Time is the logical (simulated or wall-derived) time of the
	// event in nanoseconds.
	Time logical.Time `json:"atNs"`
	// Seq is the component-local sequence number, starting at 1 and
	// incrementing per record of the same component. It breaks ties
	// between same-time records of one component and is identical in
	// every execution mode.
	Seq uint64 `json:"seq"`
	// Component labels the emitting component (e.g. "plat03.client").
	// A component must live on exactly one kernel of a federation.
	Component string `json:"component"`
	// Kind classifies the event (see the Kind constants).
	Kind string `json:"kind"`
	// Digest is the FNV-1a digest of the event payload.
	Digest uint64 `json:"digest"`
	// Src is the source address of a captured input (recv records
	// only).
	Src string `json:"src,omitempty"`
	// Data holds the full marshaled bytes of a captured input so a
	// Replayer can re-inject it. Digest-only records leave it nil.
	Data []byte `json:"data,omitempty"`
}

// String renders the record for diagnostics.
func (r *Record) String() string {
	extra := ""
	if r.Src != "" {
		extra = " src=" + r.Src
	}
	if r.Data != nil {
		extra += fmt.Sprintf(" data=%dB", len(r.Data))
	}
	return fmt.Sprintf("t=%d %s#%d %s digest=%016x%s",
		int64(r.Time), r.Component, r.Seq, r.Kind, r.Digest, extra)
}

// equal reports full record equality, stored input bytes included.
func (r *Record) equal(o *Record) bool {
	return r.Time == o.Time && r.Seq == o.Seq && r.Component == o.Component &&
		r.Kind == o.Kind && r.Digest == o.Digest && r.Src == o.Src &&
		bytes.Equal(r.Data, o.Data)
}

// Trace is a canonical logical event trace: records sorted by (time,
// component, sequence) — a total order (component+seq is unique) that
// every execution mode agrees on, so two behaviourally identical runs
// produce byte-identical encoded traces regardless of partition count
// or GOMAXPROCS.
type Trace struct {
	// Records are the events in canonical order.
	Records []Record `json:"records"`
	// Truncated counts records evicted from ring buffers before the
	// snapshot was taken (0 = complete). A truncated trace is still
	// canonical but mode-independence only holds for complete traces.
	Truncated uint64 `json:"truncated,omitempty"`
}

// sortCanonical establishes the canonical (time, component, seq)
// order in place.
func sortCanonical(recs []Record) {
	sort.Slice(recs, func(i, j int) bool {
		a, b := &recs[i], &recs[j]
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		if a.Component != b.Component {
			return a.Component < b.Component
		}
		return a.Seq < b.Seq
	})
}

// Merge combines the snapshots of several recorders — typically one
// per partition kernel of a federation — into one canonical trace.
// Because each component lives on exactly one kernel and records only
// component-local state, the merged trace is byte-identical to the
// trace of the same scenario run on a single kernel.
func Merge(recorders ...*Recorder) *Trace {
	t := &Trace{}
	for _, r := range recorders {
		recs, dropped := r.snapshot()
		t.Records = append(t.Records, recs...)
		t.Truncated += dropped
	}
	sortCanonical(t.Records)
	return t
}

// Len returns the number of records.
func (t *Trace) Len() int { return len(t.Records) }

// Filter returns a new trace holding only records of the given kind,
// preserving canonical order.
func (t *Trace) Filter(kind string) *Trace {
	out := &Trace{Truncated: t.Truncated}
	for i := range t.Records {
		if t.Records[i].Kind == kind {
			out.Records = append(out.Records, t.Records[i])
		}
	}
	return out
}

// WithoutTimes returns a copy of the trace with every record's time
// zeroed (canonical record order preserved). Replay comparisons use
// it: a replayed run reproduces the recorded event *contents and
// order*, while event times shift from wall-derived to simulated.
func (t *Trace) WithoutTimes() *Trace {
	out := &Trace{
		Records:   append([]Record(nil), t.Records...),
		Truncated: t.Truncated,
	}
	for i := range out.Records {
		out.Records[i].Time = 0
	}
	return out
}

// Divergence names the first event at which two traces disagree. A
// and B are the differing records of the respective traces; one of
// them is nil when the shorter trace is a strict prefix of the
// longer.
type Divergence struct {
	// Index is the position (in canonical order) of the first
	// disagreement.
	Index int
	// A is the first trace's record at Index (nil when trace A ended).
	A *Record
	// B is the second trace's record at Index (nil when trace B ended).
	B *Record
}

// Time returns the logical time of the divergent event (the earlier
// of the two sides when both exist).
func (d *Divergence) Time() logical.Time {
	switch {
	case d.A == nil:
		return d.B.Time
	case d.B == nil:
		return d.A.Time
	case d.B.Time < d.A.Time:
		return d.B.Time
	default:
		return d.A.Time
	}
}

// Component returns the component label of the divergent event.
func (d *Divergence) Component() string {
	if d.A != nil {
		return d.A.Component
	}
	return d.B.Component
}

// Kind returns the kind of the divergent event.
func (d *Divergence) Kind() string {
	if d.A != nil {
		return d.A.Kind
	}
	return d.B.Kind
}

// String renders the divergence for gate failure messages: the
// (time, component, kind) triple plus both sides' records.
func (d *Divergence) String() string {
	side := func(r *Record) string {
		if r == nil {
			return "<trace ended>"
		}
		return r.String()
	}
	return fmt.Sprintf("event #%d: a: %s | b: %s", d.Index, side(d.A), side(d.B))
}

// FirstDivergence compares two canonical traces record by record and
// returns the first disagreement, or nil when the traces are
// identical (same records, stored input bytes included). Two runs of
// the same scenario with the same seed must never diverge; a
// perturbed seed yields a concrete (time, component, kind) triple.
func FirstDivergence(a, b *Trace) *Divergence {
	n := len(a.Records)
	if len(b.Records) < n {
		n = len(b.Records)
	}
	for i := 0; i < n; i++ {
		if !a.Records[i].equal(&b.Records[i]) {
			return &Divergence{Index: i, A: &a.Records[i], B: &b.Records[i]}
		}
	}
	if len(a.Records) > n {
		return &Divergence{Index: n, A: &a.Records[n]}
	}
	if len(b.Records) > n {
		return &Divergence{Index: n, B: &b.Records[n]}
	}
	return nil
}
