package trace

import (
	"testing"

	"repro/internal/logical"
)

// The recorder rides the hot path of every traced kernel, so the
// digest-only record path must not allocate: ring slots are
// preallocated and recycled (the AtTransient free-list discipline),
// the digest is computed in place, and the per-component sequence map
// only allocates on first sight of a component.
func TestTraceRecordZeroAllocs(t *testing.T) {
	r := NewRecorder(1 << 12)
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	// Prime the per-component sequence entry.
	r.TraceEvent(0, "plat00.client", KindCall, payload)
	allocs := testing.AllocsPerRun(1000, func() {
		r.TraceEvent(1, "plat00.client", KindCall, payload)
	})
	if allocs != 0 {
		t.Fatalf("TraceEvent allocates %.1f objects/op, want 0", allocs)
	}
	// Wrap-around (slot recycling) must stay alloc-free too.
	allocs = testing.AllocsPerRun(1<<13, func() {
		r.TraceEvent(2, "plat00.client", KindServe, payload)
	})
	if allocs != 0 {
		t.Fatalf("TraceEvent allocates %.1f objects/op after wrap, want 0", allocs)
	}
}

// BenchmarkTraceRecord is the recorder hot-path gate: 0 allocs/op.
func BenchmarkTraceRecord(b *testing.B) {
	r := NewRecorder(1 << 14)
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	r.TraceEvent(0, "plat00.client", KindCall, payload)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.TraceEvent(logical.Time(i), "plat00.client", KindCall, payload)
	}
}
