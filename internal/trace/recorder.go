package trace

import (
	"sync"

	"repro/internal/logical"
)

// fnvOffset and fnvPrime are the FNV-1a constants.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// Digest computes the FNV-1a digest of a payload — the hash every
// digest-only trace record stores in place of the bytes.
func Digest(payload []byte) uint64 {
	h := fnvOffset
	for _, b := range payload {
		h ^= uint64(b)
		h *= fnvPrime
	}
	return h
}

// Recorder captures logical events into a pooled ring buffer. It
// implements des.Tracer, so a kernel forwards its Trace calls here;
// the endpoint wrappers call it directly with wall-derived times.
//
// The ring mirrors the kernel's AtTransient free-list discipline:
// record slots are allocated once at construction and recycled in
// place — appending a record on the hot path performs zero
// allocations (asserted by TestTraceRecordZeroAllocs). When the ring
// is full the oldest record is evicted (its slot is the free-list
// entry handed to the newcomer) and Dropped counts the loss; size the
// capacity so complete runs never evict, because mode-independence of
// the merged trace only holds for complete traces.
//
// A Recorder is safe for concurrent use: live recording writes from
// both a socket-reader goroutine (inputs) and the kernel goroutine
// (outputs). Under deterministic simulation only the owning kernel's
// goroutine writes, and the uncontended mutex stays cheap.
type Recorder struct {
	mu      sync.Mutex
	ring    []Record
	head    int // index of the oldest record
	count   int
	dropped uint64
	seqs    map[string]uint64
	tap     Tap
}

// Tap receives a copy of every event appended to a Recorder (see
// SetTap). The monitor engine implements it, which is how online
// runtime verification attaches to a live RecordingEndpoint stream:
// the endpoints keep writing to the concrete Recorder, and the tap
// observes the same stream without a second instrumentation seam.
type Tap interface {
	// TraceEvent mirrors the des.Tracer hook: one appended record's
	// time, component, kind and payload (the full input bytes for
	// stored-input records, so digests agree with the ring's).
	TraceEvent(at logical.Time, component, kind string, payload []byte)
}

// SetTap installs a sink that observes every subsequently appended
// record, in exact append order (the tap runs under the recorder's
// lock — it must not call back into the recorder). A nil tap detaches.
func (r *Recorder) SetTap(t Tap) {
	r.mu.Lock()
	r.tap = t
	r.mu.Unlock()
}

// NewRecorder creates a recorder whose ring holds up to capacity
// records (minimum 16). The full ring is allocated up front so the
// recording hot path never grows it.
func NewRecorder(capacity int) *Recorder {
	if capacity < 16 {
		capacity = 16
	}
	return &Recorder{
		ring: make([]Record, capacity),
		seqs: make(map[string]uint64),
	}
}

// slot returns the ring slot for the next record, evicting the
// oldest when full. Called with mu held.
func (r *Recorder) slot() *Record {
	var i int
	if r.count < len(r.ring) {
		i = (r.head + r.count) % len(r.ring)
		r.count++
	} else {
		// Recycle the oldest slot — the free-list hand-off.
		i = r.head
		r.head = (r.head + 1) % len(r.ring)
		r.dropped++
	}
	return &r.ring[i]
}

// TraceEvent appends a digest-only record for an event of the given
// component at logical time at. It is the des.Tracer hook: kernels
// forward Kernel.Trace calls here with their current time. The
// payload is digested, never retained, and the call performs no
// allocations once the component has been seen.
func (r *Recorder) TraceEvent(at logical.Time, component, kind string, payload []byte) {
	d := Digest(payload)
	r.mu.Lock()
	seq := r.seqs[component] + 1
	r.seqs[component] = seq
	*r.slot() = Record{Time: at, Seq: seq, Component: component, Kind: kind, Digest: d}
	if r.tap != nil {
		r.tap.TraceEvent(at, component, kind, payload)
	}
	r.mu.Unlock()
}

// RecordInput appends a stored-payload record for a captured input:
// data holds the full marshaled message (copied) so a Replayer can
// re-inject it, and src names the sender. Inputs are the only records
// that keep their bytes — everything else is digested.
func (r *Recorder) RecordInput(at logical.Time, component, kind, src string, data []byte) {
	r.recordInputOwned(at, component, kind, src, append([]byte(nil), data...))
}

// recordInputOwned is RecordInput without the defensive copy: the
// caller hands over ownership of data (it must never be mutated
// afterwards). The recording endpoints use it with freshly marshaled
// buffers to avoid copying every captured input twice.
func (r *Recorder) recordInputOwned(at logical.Time, component, kind, src string, data []byte) {
	d := Digest(data)
	r.mu.Lock()
	seq := r.seqs[component] + 1
	r.seqs[component] = seq
	*r.slot() = Record{
		Time: at, Seq: seq, Component: component, Kind: kind,
		Digest: d, Src: src, Data: data,
	}
	if r.tap != nil {
		r.tap.TraceEvent(at, component, kind, data)
	}
	r.mu.Unlock()
}

// Len returns the number of records currently buffered.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Dropped returns the number of records evicted by ring overflow.
func (r *Recorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// snapshot copies the buffered records out in insertion order.
func (r *Recorder) snapshot() ([]Record, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Record, 0, r.count)
	for i := 0; i < r.count; i++ {
		out = append(out, r.ring[(r.head+i)%len(r.ring)])
	}
	return out, r.dropped
}

// Trace snapshots the recorder into a canonical trace (see Merge for
// combining several partition recorders).
func (r *Recorder) Trace() *Trace { return Merge(r) }
