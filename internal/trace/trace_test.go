package trace

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/des"
	"repro/internal/logical"
	"repro/internal/someip"
)

func mkRecorder(events ...Record) *Recorder {
	r := NewRecorder(len(events) + 16)
	for _, e := range events {
		if e.Data != nil {
			r.RecordInput(e.Time, e.Component, e.Kind, e.Src, e.Data)
		} else {
			r.TraceEvent(e.Time, e.Component, e.Kind, []byte{byte(e.Digest)})
		}
	}
	return r
}

// Merge must order records by (time, component, seq) regardless of
// how they were split across recorders — the property that makes a
// federated trace byte-identical to the single-kernel trace.
func TestMergeCanonicalOrder(t *testing.T) {
	// One recorder with everything, in execution order.
	single := NewRecorder(16)
	single.TraceEvent(10, "b", KindCall, []byte{1})
	single.TraceEvent(10, "a", KindServe, []byte{2})
	single.TraceEvent(20, "a", KindServe, []byte{3})
	single.TraceEvent(20, "a", KindServe, []byte{4})

	// The same events split across two "partition" recorders.
	p0 := NewRecorder(16)
	p0.TraceEvent(10, "a", KindServe, []byte{2})
	p0.TraceEvent(20, "a", KindServe, []byte{3})
	p0.TraceEvent(20, "a", KindServe, []byte{4})
	p1 := NewRecorder(16)
	p1.TraceEvent(10, "b", KindCall, []byte{1})

	one := Merge(single)
	fed := Merge(p0, p1)
	if d := FirstDivergence(one, fed); d != nil {
		t.Fatalf("merged federated trace diverged from single trace: %s", d)
	}
	if !bytes.Equal(one.Encode(), fed.Encode()) {
		t.Fatal("encodings differ despite identical records")
	}
	// Canonical order: t=10 "a" before t=10 "b", then the two t=20
	// records in seq order.
	want := []string{"a", "b", "a", "a"}
	for i, w := range want {
		if one.Records[i].Component != w {
			t.Fatalf("record %d component = %s, want %s", i, one.Records[i].Component, w)
		}
	}
	if one.Records[2].Seq >= one.Records[3].Seq {
		t.Fatal("same-component same-time records out of seq order")
	}
}

func TestFirstDivergence(t *testing.T) {
	a := Merge(mkRecorder(
		Record{Time: 1, Component: "x", Kind: KindCall, Digest: 1},
		Record{Time: 2, Component: "x", Kind: KindCall, Digest: 2},
	))
	b := Merge(mkRecorder(
		Record{Time: 1, Component: "x", Kind: KindCall, Digest: 1},
		Record{Time: 2, Component: "x", Kind: KindCall, Digest: 3},
	))
	if d := FirstDivergence(a, a); d != nil {
		t.Fatalf("trace diverges from itself: %s", d)
	}
	d := FirstDivergence(a, b)
	if d == nil {
		t.Fatal("differing digests not detected")
	}
	if d.Index != 1 || d.Time() != 2 || d.Component() != "x" || d.Kind() != KindCall {
		t.Fatalf("wrong divergence: %s", d)
	}

	// Prefix case: the longer trace's extra record is the divergence.
	short := &Trace{Records: a.Records[:1]}
	d = FirstDivergence(short, a)
	if d == nil || d.Index != 1 || d.A != nil || d.B == nil {
		t.Fatalf("prefix divergence wrong: %v", d)
	}
	if d.Component() != "x" || d.Kind() != KindCall {
		t.Fatalf("prefix divergence triple wrong: %s", d)
	}
}

// Binary and JSON encodings must round-trip every field, stored
// input bytes included.
func TestEncodeRoundTrips(t *testing.T) {
	rec := NewRecorder(16)
	rec.TraceEvent(5, "plat00.client", KindCall, []byte("payload"))
	rec.RecordInput(7, "server", KindRecv, "127.0.0.1:9", []byte{1, 2, 3})
	rec.TraceEvent(7, "server", KindSend, nil)
	tr := rec.Trace()
	tr.Truncated = 3 // exercise the field

	bin, err := Decode(tr.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if d := FirstDivergence(tr, bin); d != nil || bin.Truncated != 3 {
		t.Fatalf("binary round trip changed the trace: %v (truncated=%d)", d, bin.Truncated)
	}

	js, err := tr.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	fromJSON, err := DecodeJSON(js)
	if err != nil {
		t.Fatal(err)
	}
	if d := FirstDivergence(tr, fromJSON); d != nil || fromJSON.Truncated != 3 {
		t.Fatalf("JSON round trip changed the trace: %v", d)
	}

	// Corruption fails loudly.
	raw := tr.Encode()
	if _, err := Decode(raw[:len(raw)-2]); err == nil {
		t.Fatal("truncated encoding decoded without error")
	}
	if _, err := Decode(append(raw, 0)); err == nil {
		t.Fatal("trailing bytes decoded without error")
	}
	raw[0] = 'X'
	if _, err := Decode(raw); err == nil {
		t.Fatal("bad magic decoded without error")
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	rec := NewRecorder(16)
	rec.RecordInput(1, "c", KindRecv, "peer", []byte{9, 9})
	tr := rec.Trace()
	path := filepath.Join(t.TempDir(), "t.trace")
	if err := WriteFile(path, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if d := FirstDivergence(tr, got); d != nil {
		t.Fatalf("file round trip changed the trace: %s", d)
	}
}

// Ring overflow recycles the oldest slots and counts the loss.
func TestRecorderRingOverflow(t *testing.T) {
	r := NewRecorder(16)
	for i := 0; i < 40; i++ {
		r.TraceEvent(logical.Time(i), "c", KindCall, []byte{byte(i)})
	}
	if r.Len() != 16 {
		t.Fatalf("ring holds %d records, want 16", r.Len())
	}
	if r.Dropped() != 24 {
		t.Fatalf("dropped = %d, want 24", r.Dropped())
	}
	tr := r.Trace()
	if tr.Truncated != 24 {
		t.Fatalf("trace.Truncated = %d", tr.Truncated)
	}
	// The survivors are the newest records, seqs intact.
	if tr.Records[0].Seq != 25 || tr.Records[0].Time != 24 {
		t.Fatalf("oldest survivor = %s, want seq 25 at t=24", tr.Records[0].String())
	}
}

// The kernel hook: Trace forwards to the installed tracer with the
// kernel's current time; without a tracer it is a no-op.
func TestKernelTraceHook(t *testing.T) {
	k := des.NewKernel(1)
	k.Trace("c", KindCall, nil) // no tracer: must not panic
	rec := NewRecorder(16)
	k.SetTracer(rec)
	k.At(10, func() { k.Trace("c", KindCall, []byte{1}) })
	k.At(20, func() { k.Trace("c", KindServe, []byte{2}) })
	k.RunAll()
	tr := rec.Trace()
	if tr.Len() != 2 {
		t.Fatalf("recorded %d events, want 2", tr.Len())
	}
	if tr.Records[0].Time != 10 || tr.Records[1].Time != 20 {
		t.Fatalf("kernel times not stamped: %s / %s", tr.Records[0].String(), tr.Records[1].String())
	}
	if tr.Records[0].Seq != 1 || tr.Records[1].Seq != 2 {
		t.Fatal("per-component sequence not monotone")
	}
}

// WithoutTimes zeroes times but preserves order and content.
func TestWithoutTimes(t *testing.T) {
	rec := NewRecorder(16)
	rec.TraceEvent(5, "a", KindCall, []byte{1})
	rec.TraceEvent(9, "a", KindCall, []byte{2})
	tr := rec.Trace()
	stripped := tr.WithoutTimes()
	if stripped.Records[0].Time != 0 || stripped.Records[1].Time != 0 {
		t.Fatal("times survive WithoutTimes")
	}
	if tr.Records[0].Time != 5 {
		t.Fatal("WithoutTimes mutated the original")
	}
	if stripped.Records[0].Digest != tr.Records[0].Digest {
		t.Fatal("WithoutTimes changed record content")
	}
}

// The replayer injects stored inputs in order and captures sends.
func TestReplayerInjectsAndCaptures(t *testing.T) {
	// Record two inputs (same wall nanosecond — injection must keep
	// capture order) through a recording endpoint facade.
	rec := NewRecorder(16)
	msg := func(b byte) []byte {
		m := &someip.Message{Service: 0x2102, Method: 1, Type: someip.TypeRequest, Payload: []byte{b}}
		return m.Marshal()
	}
	rec.RecordInput(100, "server", KindRecv, "peer:1", msg(1))
	rec.RecordInput(100, "server", KindRecv, "peer:1", msg(2))

	k := des.NewKernel(1)
	out := NewRecorder(16)
	rp := NewReplayer(k, rec.Trace(), out)
	if rp.Inputs() != 2 {
		t.Fatalf("replayer sees %d inputs, want 2", rp.Inputs())
	}
	var order []byte
	rp.OnMessage(func(src someip.Addr, m *someip.Message) {
		order = append(order, m.Payload[0])
		// Echo straight back through the endpoint.
		if err := rp.Send(src, &someip.Message{
			Service: m.Service, Method: m.Method,
			Type: someip.TypeResponse, Payload: m.Payload,
		}); err != nil {
			t.Error(err)
		}
	})
	if err := rp.Start(); err != nil {
		t.Fatal(err)
	}
	if err := rp.Start(); err == nil {
		t.Fatal("double Start not rejected")
	}
	k.RunAll()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("injection order = %v", order)
	}
	tr := out.Trace()
	if tr.Len() != 4 {
		t.Fatalf("replayed trace has %d records, want 4 (2 recv + 2 send)", tr.Len())
	}
	sends := tr.Filter(KindSend)
	if sends.Len() != 2 {
		t.Fatalf("captured %d sends", sends.Len())
	}
	sent, recv, _ := rp.Stats()
	if sent != 2 || recv != 2 {
		t.Fatalf("stats = (%d, %d)", sent, recv)
	}
}

// A recording endpoint must be transparent: traffic flows through the
// wrapped endpoint unchanged while inputs are stored in full and
// outputs as digests.
func TestRecordingEndpointTransparent(t *testing.T) {
	inner := &fakeEndpoint{}
	rec := NewRecorder(16)
	now := logical.Time(0)
	ep := NewRecordingEndpoint(inner, rec, "server", func() logical.Time { now++; return now })

	var got *someip.Message
	ep.OnMessage(func(src someip.Addr, m *someip.Message) { got = m })

	req := &someip.Message{Service: 1, Method: 2, Type: someip.TypeRequest, Payload: []byte{7},
		Tag: &logical.Tag{Time: 42}}
	inner.deliver(replayAddr("peer"), req)
	if got == nil || got.Payload[0] != 7 {
		t.Fatal("inbound message not forwarded")
	}
	resp := &someip.Message{Service: 1, Method: 2, Type: someip.TypeResponse, Payload: []byte{8}}
	if err := ep.Send(replayAddr("peer"), resp); err != nil {
		t.Fatal(err)
	}
	if inner.sentMsgs != 1 {
		t.Fatal("outbound message not forwarded")
	}

	tr := rec.Trace()
	if tr.Len() != 2 {
		t.Fatalf("recorded %d events, want 2", tr.Len())
	}
	in, out := &tr.Records[0], &tr.Records[1]
	if in.Kind != KindRecv || in.Data == nil || in.Src != "peer" {
		t.Fatalf("input record wrong: %s", in)
	}
	if m, err := someip.UnmarshalTagged(in.Data); err != nil || m.Tag == nil || m.Tag.Time != 42 {
		t.Fatalf("stored input does not round-trip the tag: %v %v", m, err)
	}
	if out.Kind != KindSend || out.Data != nil {
		t.Fatalf("output record wrong: %s", out)
	}
	if out.Digest != Digest(resp.Marshal()) {
		t.Fatal("output digest does not cover the marshaled message")
	}
}

// fakeEndpoint is a minimal someip.Endpoint for wrapper tests.
type fakeEndpoint struct {
	handler  func(src someip.Addr, m *someip.Message)
	sentMsgs int
}

func (f *fakeEndpoint) Send(dst someip.Addr, m *someip.Message) error { f.sentMsgs++; return nil }
func (f *fakeEndpoint) OnMessage(fn func(src someip.Addr, m *someip.Message)) {
	f.handler = fn
}
func (f *fakeEndpoint) OnError(fn func(src someip.Addr, err error)) {}
func (f *fakeEndpoint) LocalAddr() someip.Addr                      { return replayAddr("fake") }
func (f *fakeEndpoint) Tagged() bool                                { return true }
func (f *fakeEndpoint) Stats() (uint64, uint64, uint64)             { return 0, 0, 0 }
func (f *fakeEndpoint) Close() error                                { return nil }
func (f *fakeEndpoint) deliver(src someip.Addr, m *someip.Message) {
	if f.handler != nil {
		f.handler(src, m)
	}
}
