// Package dear is a Go reproduction of "Achieving Determinism in Adaptive
// AUTOSAR" (Menard, Goens, Lohstroh, Castrillon — DATE 2020): the DEAR
// framework, which layers the deterministic reactor model of computation
// on top of the AUTOSAR Adaptive Platform's service-oriented
// communication stack.
//
// The package re-exports the user-facing API of the internal packages:
//
//   - the reactor runtime (environments, reactors, reactions, ports,
//     actions, timers, deadlines) — internal/reactor;
//   - the DEAR framework (software components, the four transactors,
//     tagged bindings, safe-to-process configuration) — internal/core;
//   - the ara::com substrate (service interfaces, runtimes, proxies,
//     skeletons, futures) — internal/ara;
//   - the deterministic simulation substrate (kernel, platforms with
//     drifting clocks, network with latency models) — internal/des and
//     internal/simnet.
//
// # A minimal deterministic program
//
//	env := dear.NewEnvironment(dear.Options{Fast: true})
//	r := env.NewReactor("hello")
//	tick := dear.NewTimer(r, "tick", 0, dear.Duration(100*dear.Millisecond))
//	r.AddReaction("greet").Triggers(tick).Do(func(c *dear.ReactionCtx) {
//	    fmt.Println("logical time:", c.LogicalTime())
//	})
//	env.Run()
//
// # Deterministic software components
//
// SWCs couple a reactor program to AUTOSAR AP service interfaces through
// transactors; see examples/ for complete pipelines, and internal/apd for
// the paper's brake-assistant case study in both the stock
// (nondeterministic) and the DEAR (deterministic) variant.
package dear
