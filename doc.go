// Package dear is a Go reproduction of "Achieving Determinism in Adaptive
// AUTOSAR" (Menard, Goens, Lohstroh, Castrillon — DATE 2020): the DEAR
// framework, which layers the deterministic reactor model of computation
// on top of the AUTOSAR Adaptive Platform's service-oriented
// communication stack.
//
// The package re-exports the user-facing API of the internal packages:
//
//   - the reactor runtime (environments, reactors, reactions, ports,
//     actions, timers, deadlines) — internal/reactor;
//   - the DEAR framework (software components, the four transactors,
//     tagged bindings, safe-to-process configuration) — internal/core;
//   - the ara::com substrate (service interfaces, runtimes, proxies,
//     skeletons, futures) — internal/ara;
//   - the deterministic simulation substrate (kernel, platforms with
//     drifting clocks, network with latency models) — internal/des and
//     internal/simnet.
//
// # A minimal deterministic program
//
//	env := dear.NewEnvironment(dear.Options{Fast: true})
//	r := env.NewReactor("hello")
//	tick := dear.NewTimer(r, "tick", 0, dear.Duration(100*dear.Millisecond))
//	r.AddReaction("greet").Triggers(tick).Do(func(c *dear.ReactionCtx) {
//	    fmt.Println("logical time:", c.LogicalTime())
//	})
//	env.Run()
//
// # Deterministic software components
//
// SWCs couple a reactor program to AUTOSAR AP service interfaces through
// transactors; see examples/ for complete pipelines, and internal/apd for
// the paper's brake-assistant case study in both the stock
// (nondeterministic) and the DEAR (deterministic) variant.
//
// # Choosing a transport
//
// The SOME/IP binding is substrate-independent: everything above the
// codec is written against the Endpoint seam, which two transports
// implement. The default is the deterministic simulated network — a
// Runtime created with NewRuntime binds a simnet endpoint, discovers
// peers through the simulated SD multicast group, and is driven
// reproducibly by Kernel.Run:
//
//	rt, err := dear.NewRuntime(host, dear.RuntimeConfig{Name: "swc", Tagged: true})
//
// The deployment path uses real UDP sockets. A Runtime created with
// NewUDPRuntime binds a socket and is driven by a RealTime driver,
// which advances the same kernel at wall-clock pace and injects socket
// receptions as kernel events; peers are configured statically because
// there is no SD substrate:
//
//	drv := dear.NewRealTime(dear.NewKernel(1))
//	rt, err := dear.NewUDPRuntime(drv, "127.0.0.1:0", dear.RuntimeConfig{Name: "swc", Tagged: true})
//	px := rt.StaticProxy(iface, instance, peer)
//	go drv.Run()
//
// Proxies, skeletons, futures, the executor and the DEAR tag trailer
// behave identically in both modes; only time differs — logical and
// reproducible under simulation, physical under the driver. See
// cmd/federate for a complete two-federate deployment over loopback.
//
// # Sharded simulation
//
// Large topologies need not run on one sequential kernel. A Federation
// owns one kernel per partition, executed on its own goroutine under
// conservative (LBTS / null-message style) time synchronization, and a
// Cluster partitions the simulated network across them: intra-partition
// links schedule locally, cross-partition links become timestamped
// inter-federate channels whose minimum latency supplies the lookahead.
// Runtimes are pinned to their partition's kernel transparently —
// NewRuntime against a Cluster host works unchanged:
//
//	fed := dear.NewFederation(seed, 4)
//	cluster, err := dear.NewCluster(fed, dear.NetworkConfig{
//	    DefaultLatency: dear.FixedLatency(200 * dear.Microsecond),
//	})
//	host := cluster.AddHost(0, "ecu0", nil) // partition 0
//	rt, err := dear.NewRuntime(host, dear.RuntimeConfig{Name: "swc"})
//	fed.RunAll()
//
// Sharded runs preserve the repo's defining property: the same seed
// produces byte-identical behaviour for every partition count and every
// GOMAXPROCS value (experiment E10 gates this). Cross-partition links
// must use RNG-free latency models (see simnet.Cluster for the full
// determinism contract).
//
// # Fault injection and recovery
//
// A FaultPlan turns the benign simulated network hostile — seeded
// background loss, per-link loss windows, network partitions and
// jitter bursts — without costing determinism: every packet fate is a
// counter-based pure function of (seed, directed link, packet index),
// so the same packet meets the same fate under any partitioning and
// any GOMAXPROCS (experiment E11 gates this, drops and all, on a
// federated Cluster):
//
//	net := dear.NewNetwork(k, dear.NetworkConfig{
//	    DropRate: 0.01,
//	    Faults: &dear.FaultPlan{
//	        Partitions: []dear.PartitionWindow{{From: t0, To: t1}},
//	    },
//	})
//
// Hosts crash and restart: Host.Crash silences a platform (endpoints
// close, in-flight packets drop, no SD stop-offer is sent), remote
// agents observe the loss through SD TTL expiry, and Host.Restart
// rebuilds the stack whose skeletons re-offer through SD so consumers
// re-bind. Runtime.WatchService is the client-side counterpart: a
// persistent up/down watcher that hands out a fresh proxy on every
// (re)discovery.
//
// # Declarative scenarios
//
// Instead of hand-assembling kernels, networks, hosts and runtimes,
// a deployment can be declared as a Scenario — platform count,
// topology shape (star, ring, tree, random-regular, full; all seeded
// generators), partition assignment, link model, fault plan, workload
// mix and seed — and compiled into a runnable world:
//
//	spec := dear.TopologyScenario(dear.ScenarioStar, 16)
//	spec.Seed, spec.Partitions = 7, 4
//	world, err := dear.BuildScenario(spec)
//	world.Run()
//	// world.Stats holds the canonical per-platform report rows.
//
// Scenarios serialize to/from JSON (ParseScenario), so a deployment
// that was never compiled into the binary can run from a file:
// `go run ./cmd/experiments -scenario examples/scenarios/star.json`.
// DescribeScenario renders the canonical, mode-independent description
// of the compiled world — the string the scenario golden tests pin.
// Experiment E12 sweeps the same workload across every topology shape
// × partition count and extends the byte-equality determinism gate to
// each.
//
// # Logical traces, divergence diagnosis and record/replay
//
// Every scenario run records a canonical logical event trace —
// (time, per-component sequence, component, kind, payload digest)
// records captured through the kernel's tracer hook into pooled ring
// buffers. The merged trace is mode-independent: byte-identical for
// every partition count and GOMAXPROCS value, like the canonical
// report. When two runs disagree, FirstDivergence names the first
// divergent event instead of leaving a byte-level diff:
//
//	world.Run()
//	t := world.Trace()                    // canonical *dear.Trace
//	if d := dear.FirstDivergence(t, t2); d != nil {
//	    fmt.Println(d)                    // time, component, kind, digests
//	}
//
// Record/replay closes the loop on the paper's pure-function claim:
// wrap a live runtime's transport in a recording endpoint
// (RuntimeConfig.WrapEndpoint + NewTraceRecorder), persist the trace
// (WriteTraceFile), and re-inject the stored tagged inputs into a
// fresh simulated kernel through a Replayer endpoint
// (NewEndpointRuntime) — the replayed outputs must match the recorded
// ones record-for-record. Experiment E13 runs exactly this gate over
// a real-UDP loopback run (`go run ./cmd/experiments -trace f`, then
// `-replay f`).
//
// # Online runtime verification
//
// Monitors (internal/monitor, experiment E16) verify temporal safety
// properties over the live trace stream as it is recorded: a
// MonitorEngine tees off the same kernel tracer hook as the recorder
// (KernelTeeTracer) — or taps a live recording via
// Recorder.SetTap — and evaluates combinator-built monitors
// (MonitorAlways, MonitorNever, MonitorMatchedWithin) at zero
// allocations per event. The standard safety library — no silent
// corruption, responded-within-deadline, rebound-within-deadline — is
// declared per scenario through the Scenario's Monitors block, and
// verdicts are mode-independent: merged federated verdicts equal the
// single-kernel engine's byte-for-byte. A violated run dumps the
// canonical trace prefix up to the violation's anchoring record, which
// replays offline (MonitorEvaluate) to the same violation:
//
//	spec.Monitors = dear.DefaultScenarioMonitors(spec)
//	world, _ := dear.BuildScenario(spec)
//	world.Run()
//	for _, v := range world.Verdicts() {
//	    if !v.OK() { fmt.Println(v.Monitor, v.Violations) }
//	}
package dear
