// Command brakeassist runs the APD brake assistant pipeline in either
// implementation and reports the error instrumentation.
//
// Usage:
//
//	brakeassist -mode baseline [-frames N] [-seed S]
//	brakeassist -mode dear     [-frames N] [-seed S] [-deadline-scale X]
//	brakeassist -mode compare  [-frames N] [-seed S]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/apd"
	"repro/internal/logical"
	"repro/internal/metrics"
)

func main() {
	mode := flag.String("mode", "compare", "baseline | dear | compare")
	frames := flag.Int("frames", 10000, "frames to process")
	seed := flag.Uint64("seed", 1, "simulation seed")
	scale := flag.Float64("deadline-scale", 1.0, "DEAR deadline scale factor")
	split := flag.Bool("split", false, "DEAR: deploy CV+EBA on a third platform (drifting synced clocks, E=2.5ms)")
	flag.Parse()

	switch *mode {
	case "baseline":
		runBaseline(*seed, *frames)
	case "dear":
		runDear(*seed, *frames, *scale, *split)
	case "compare":
		runBaseline(*seed, *frames)
		fmt.Println()
		runDear(*seed, *frames, *scale, *split)
	default:
		log.Fatalf("brakeassist: unknown mode %q", *mode)
	}
}

func runBaseline(seed uint64, frames int) {
	b, err := apd.NewBaseline(seed, apd.DefaultBaselineConfig(frames))
	if err != nil {
		log.Fatalf("brakeassist: %v", err)
	}
	c := b.Run()
	fmt.Printf("baseline (stock APD) — %d frames, seed %d\n", frames, seed)
	printCounters(c)
	brakes := 0
	for _, cmd := range b.BrakeSeq {
		if cmd.Brake {
			brakes++
		}
	}
	fmt.Printf("brake activations: %d\n", brakes)
}

func runDear(seed uint64, frames int, scale float64, split bool) {
	cfg := apd.DefaultDeterministicConfig(frames)
	cfg.DeadlineScale = scale
	deployment := "single platform (paper)"
	if split {
		cfg.SplitPlatforms = true
		cfg.DriftPPB = 30_000
		cfg.SyncBound = logical.Millisecond
		cfg.ClockError = 2500 * logical.Microsecond
		cfg.VADeadline += 3 * logical.Millisecond
		cfg.PreDeadline += 3 * logical.Millisecond
		cfg.CVDeadline += 3 * logical.Millisecond
		cfg.EBADeadline += 3 * logical.Millisecond
		deployment = "split across platforms (E=2.5ms)"
	}
	d, err := apd.NewDeterministic(seed, cfg)
	if err != nil {
		log.Fatalf("brakeassist: %v", err)
	}
	c := d.Run()
	fmt.Printf("deterministic (DEAR) — %d frames, seed %d, deadline scale %.2f, %s\n", frames, seed, scale, deployment)
	printCounters(c)
	lat := metrics.NewStream()
	for _, l := range d.Latencies {
		lat.Add(float64(l))
	}
	brakes := 0
	for _, cmd := range d.BrakeSeq {
		if cmd.Brake {
			brakes++
		}
	}
	fmt.Printf("brake activations: %d\n", brakes)
	if lat.N() > 0 {
		fmt.Printf("end-to-end latency: mean=%v p99=%v max=%v\n",
			logical.Duration(lat.Mean()),
			logical.Duration(lat.Quantile(0.99)),
			logical.Duration(lat.Max()))
	}
}

func printCounters(c *apd.ErrorCounters) {
	t := metrics.NewTable("metric", "count")
	t.Row("frames sent", c.FramesSent)
	t.Row("frames processed", c.FramesProcessed)
	t.Row("dropped frames (Preprocessing)", c.DroppedPre)
	t.Row("dropped frames (Computer Vision)", c.DroppedCV)
	t.Row("input mismatches (Computer Vision)", c.MismatchCV)
	t.Row("dropped vehicles (EBA)", c.DroppedEBA)
	t.Row("deadline violations", c.DeadlineViolations)
	t.Row("safe-to-process violations", c.SafeToProcessViolations)
	fmt.Print(t)
	fmt.Printf("error prevalence: %.3f%%\n", c.Prevalence())
}
