// Command someip-dump decodes SOME/IP messages: the header,
// service-discovery payloads, and the DEAR tag trailer — from hex
// input or from a recorded trace file.
//
// Usage:
//
//	someip-dump <hex>           decode one message given as a hex string
//	echo <hex> | someip-dump    decode messages from stdin, one per line
//	someip-dump -trace <file>   decode the recorded messages of a trace
//	                            file (see experiments -trace)
//
// Example:
//
//	someip-dump $(figure-hex) # 16-byte header + payload [+ 20-byte trailer]
package main

import (
	"bufio"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/someip"
	"repro/internal/trace"
)

func main() {
	traceFile := flag.String("trace", "", "decode the recorded SOME/IP messages of a trace file")
	flag.Parse()
	if *traceFile != "" {
		if flag.NArg() > 0 {
			fmt.Fprintln(os.Stderr, "someip-dump: -trace and hex arguments are mutually exclusive")
			os.Exit(2)
		}
		dumpTrace(*traceFile)
		return
	}
	if flag.NArg() > 0 {
		for _, arg := range flag.Args() {
			dump(arg)
		}
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		dump(line)
	}
}

// dumpTrace walks a recorded trace: records that stored their message
// bytes (captured inputs) are decoded with the full dumper; digest-
// only records print as one-line summaries.
func dumpTrace(path string) {
	tr, err := trace.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "someip-dump: %v\n", err)
		os.Exit(1)
	}
	if tr.Truncated > 0 {
		fmt.Printf("# trace truncated: %d records evicted\n", tr.Truncated)
	}
	for i := range tr.Records {
		r := &tr.Records[i]
		fmt.Printf("--- record %d: %s\n", i, r.String())
		if r.Data == nil {
			continue
		}
		m, err := someip.UnmarshalTagged(r.Data)
		if err != nil {
			fmt.Printf("stored bytes      malformed: %v\n", err)
			continue
		}
		dumpMessage(m)
	}
}

func dump(hexStr string) {
	hexStr = strings.Map(func(r rune) rune {
		switch r {
		case ' ', '\t', ':', '-':
			return -1
		}
		return r
	}, hexStr)
	raw, err := hex.DecodeString(hexStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "someip-dump: bad hex: %v\n", err)
		os.Exit(1)
	}
	m, err := someip.UnmarshalTagged(raw)
	if err != nil {
		fmt.Fprintf(os.Stderr, "someip-dump: %v\n", err)
		os.Exit(1)
	}
	dumpMessage(m)
}

func dumpMessage(m *someip.Message) {
	fmt.Printf("service          0x%04x\n", uint16(m.Service))
	fmt.Printf("method/event     0x%04x", uint16(m.Method))
	if m.Method.IsEvent() {
		fmt.Printf(" (event 0x%04x)", uint16(m.Method&^0x8000))
	}
	fmt.Println()
	fmt.Printf("client/session   0x%04x / 0x%04x\n", uint16(m.Client), uint16(m.Session))
	fmt.Printf("interface ver.   %d\n", m.InterfaceVersion)
	fmt.Printf("type             %s\n", m.Type)
	fmt.Printf("return code      %s\n", m.Code)
	fmt.Printf("payload          %d bytes\n", len(m.Payload))
	if m.Tag != nil {
		fmt.Printf("DEAR tag         time=%d ns, microstep=%d\n", int64(m.Tag.Time), m.Tag.Microstep)
	}
	if m.IsSD() {
		entries, err := someip.UnmarshalSD(m.Payload)
		if err != nil {
			fmt.Printf("SD payload       malformed: %v\n", err)
			return
		}
		for i, e := range entries {
			fmt.Printf("SD entry %d       %s service=0x%04x instance=0x%04x major=%d ttl=%d",
				i, e.Type, uint16(e.Service), uint16(e.Instance), e.Major, e.TTL)
			if e.Type == someip.SubscribeEventgroup || e.Type == someip.SubscribeEventgroupAck {
				fmt.Printf(" eventgroup=0x%04x", e.Eventgroup)
			} else {
				fmt.Printf(" minor=%d", e.Minor)
			}
			fmt.Println()
			for _, o := range e.Options {
				ip := someip.AddrToIPv4(o.Addr)
				fmt.Printf("  option         IPv4 %d.%d.%d.%d:%d proto=0x%02x\n",
					ip[0], ip[1], ip[2], ip[3], o.Addr.Port, o.Proto)
			}
		}
	} else if len(m.Payload) > 0 {
		n := len(m.Payload)
		if n > 64 {
			n = 64
		}
		fmt.Printf("payload hex      %s", hex.EncodeToString(m.Payload[:n]))
		if n < len(m.Payload) {
			fmt.Printf("... (+%d bytes)", len(m.Payload)-n)
		}
		fmt.Println()
	}
}
