// Command figure5 reproduces Figure 5 of the paper: the prevalence of
// errors across repeated executions of the stock (nondeterministic)
// brake assistant.
//
// Usage:
//
//	figure5 [-instances N] [-frames F] [-seed S]
//
// The paper runs 20 instances of 100 000 frames each; defaults match.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/exp"
)

func main() {
	instances := flag.Int("instances", 20, "experiment instances")
	frames := flag.Int("frames", 100000, "frames per instance")
	seed := flag.Uint64("seed", 2024, "base seed (instance i uses seed+i)")
	csv := flag.Bool("csv", false, "emit CSV instead of a text table")
	flag.Parse()

	res, err := exp.RunFigure5(*seed, *instances, *frames)
	if err != nil {
		log.Fatalf("figure5: %v", err)
	}

	fmt.Printf("Figure 5 — error prevalence across %d executions of the baseline brake assistant\n", *instances)
	fmt.Printf("frames per instance: %d\n\n", *frames)
	if *csv {
		fmt.Print(res.Table().CSV())
	} else {
		fmt.Print(res.Table())
		fmt.Println()
		// Sorted bar chart like the paper's plot.
		prevs := res.Prevalences()
		maxP := 0.01
		for _, p := range prevs {
			if p > maxP {
				maxP = p
			}
		}
		for i := len(prevs) - 1; i >= 0; i-- {
			bar := strings.Repeat("#", int(prevs[i]/maxP*50))
			fmt.Printf("instance %2d |%-50s| %6.3f%%\n", i+1, bar, prevs[i])
		}
	}
	min, mean, max := res.Stats()
	fmt.Printf("\nprevalence: min=%.3f%%  mean=%.3f%%  max=%.3f%%\n", min, mean, max)
	fmt.Println("(paper, 100k frames on 2x MinnowBoard: min=0.018%  mean=5.60%  max=22.25%)")
}
