// Command federate runs the paper's client/server scenario as two
// federated ara::com runtimes: separate kernels, each driven by its own
// physical-clock driver, exchanging tagged SOME/IP messages over real
// loopback UDP sockets. It is the deployment-path counterpart of
// examples/clientserver — the code above the binding is identical, only
// the transport substrate differs (see the Endpoint seam in
// internal/someip).
//
// Part one performs the Figure 1 three-call sequence with blocking
// futures and shows that every request carried a DEAR tag across the
// real network. Part two runs the E9 loopback latency study.
//
// Usage:
//
//	federate [-n ROUNDTRIPS]
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/ara"
	"repro/internal/des"
	"repro/internal/exp"
	"repro/internal/logical"
	"repro/internal/someip"
)

var counterIface = &ara.ServiceInterface{
	Name:  "Counter",
	ID:    0x1100,
	Major: 1,
	Methods: []ara.MethodSpec{
		{ID: 1, Name: "set_value"},
		{ID: 2, Name: "add"},
		{ID: 3, Name: "get_value"},
	},
}

// stampHook tags every outgoing request with the client's physical
// time, the role the timestamp bypass plays in a full DEAR deployment.
type stampHook struct {
	drv *des.RealTime
}

func (h *stampHook) Outgoing(m *someip.Message) {
	if m.Type == someip.TypeRequest && m.Tag == nil {
		tag := logical.Tag{Time: h.drv.Elapsed()}
		m.Tag = &tag
	}
}

func (h *stampHook) Incoming(src someip.Addr, m *someip.Message) {}

func u32(v uint32) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	return b[:]
}

func main() {
	trips := flag.Int("n", 200, "round trips for the loopback latency study")
	flag.Parse()

	fmt.Println("federated client/server over real loopback UDP")
	fmt.Println("==============================================")
	runCounter()

	fmt.Printf("\nE9: %d tagged round trips over loopback\n", *trips)
	fmt.Println("==============================================")
	res, err := exp.RunLoopback(*trips, 2*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Table())
}

func runCounter() {
	// Each runtime is a federate: its own kernel, its own wall-clock
	// driver, its own socket — as if the two SWCs ran in separate OS
	// processes on separate machines.
	drvS := des.NewRealTime(des.NewKernel(1))
	drvC := des.NewRealTime(des.NewKernel(2))

	server, err := ara.NewUDPRuntime(drvS, "127.0.0.1:0", ara.Config{
		Name:   "server",
		Tagged: true,
		Exec:   ara.ExecConfig{Workers: 4, Serialized: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer server.Close()
	client, err := ara.NewUDPRuntime(drvC, "127.0.0.1:0", ara.Config{Name: "client", Tagged: true})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	var value uint32
	taggedReqs := 0
	sk, err := server.NewSkeleton(counterIface, 1)
	if err != nil {
		log.Fatal(err)
	}
	count := func(c *ara.Ctx) {
		if c.Message().Tag != nil {
			taggedReqs++
		}
	}
	check(sk.Handle("set_value", func(c *ara.Ctx, args []byte) ([]byte, error) {
		count(c)
		value = binary.BigEndian.Uint32(args)
		return nil, nil
	}))
	check(sk.Handle("add", func(c *ara.Ctx, args []byte) ([]byte, error) {
		count(c)
		value += binary.BigEndian.Uint32(args)
		return nil, nil
	}))
	check(sk.Handle("get_value", func(c *ara.Ctx, args []byte) ([]byte, error) {
		count(c)
		return u32(value), nil
	}))
	sk.Offer()

	client.SetBindingHook(&stampHook{drv: drvC})

	done := make(chan uint32, 1)
	client.Spawn("main", func(c *ara.Ctx) {
		px := client.StaticProxy(counterIface, 1, server.Addr())
		mustGet(c, px.Call("set_value", u32(1)))
		mustGet(c, px.Call("add", u32(2)))
		res := mustGet(c, px.Call("get_value", nil))
		done <- binary.BigEndian.Uint32(res)
	})

	go drvS.Run()
	go drvC.Run()

	select {
	case v := <-done:
		fmt.Printf("server %v <- client %v\n", server.Addr(), client.Addr())
		fmt.Printf("s.set_value(1); s.add(2); s.get_value() = %d\n", v)
	case <-time.After(10 * time.Second):
		log.Fatal("federate: counter scenario stalled")
	}

	drvS.Stop()
	drvC.Stop()
	<-drvS.Done()
	<-drvC.Done()
	server.Kernel().Shutdown()
	client.Kernel().Shutdown()

	sent, recv, _ := client.ConnStats()
	fmt.Printf("client binding: %d sent, %d received; requests carrying tags at the server: %d/3\n",
		sent, recv, taggedReqs)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func mustGet(c *ara.Ctx, f *ara.Future) []byte {
	payload, err := f.GetTimeout(c.Process(), 5*logical.Second)
	if err != nil {
		log.Fatal(err)
	}
	return payload
}
