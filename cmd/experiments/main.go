// Command experiments regenerates every experiment in the paper's
// evaluation (plus the extension studies in DESIGN.md) and prints a
// report suitable for EXPERIMENTS.md.
//
// Usage:
//
//	experiments [-quick] [-list] [-only <name>] [-scenario <file.json> [-monitors]]
//	experiments [-quick] -trace <file>
//	experiments -replay <file>
//	experiments [-quick] -bench-json <file> [-bench-suite kernel|city|federation|monitor|all]
//	experiments -fuzz <n> [-seed <s>] [-fuzz-out <dir>]
//
// Any workload mode additionally accepts -cpuprofile <file> and
// -memprofile <file> to write pprof profiles of the run.
//
// Full scale (paper scale: 20×100k frames) takes a few minutes; -quick
// shrinks workloads ~20×. -list prints the experiment registry and
// exits. -scenario compiles and runs a declarative JSON scenario spec
// (see examples/scenarios/) through the scenario engine instead of the
// built-in registry; it is mutually exclusive with -only. -monitors
// attaches the standard online safety library (no silent corruption,
// responded-within, rebound-within; deadlines derived from the spec's
// own timing unless the spec carries its own monitors block) to the
// -scenario run: a violation prints the verdicts, dumps the canonical
// trace prefix up to the first violation to <file>.violation.trace for
// offline re-evaluation, and exits nonzero — the same contract as the
// -replay divergence path. -trace
// records a live loopback (real UDP) run and writes its logical event
// trace to a file; -replay re-executes a recorded trace inside the
// deterministic simulator and exits nonzero if the replayed outputs
// diverge from the recorded ones (E13). -trace and -replay are
// mutually exclusive. -bench-json runs the performance benchmark suites
// and writes one machine-readable JSON document; -bench-suite narrows
// the run to a single suite — "kernel" (the des/simnet hot-path
// microbenchmarks, BENCH_kernel.json), "city" (city scale + trace
// recording, BENCH_city.json), "federation" (the E10 scaling workload
// across a GOMAXPROCS x partitions matrix, BENCH_federation.json, which
// CI gates coordination cost and allocation budgets against),
// "monitor" (the online-verification hot path and the monitored mesh
// with its checks/op diagnostic, BENCH_monitor.json), or "all"
// (the default). -bench-fed-json <file> is a deprecated alias for
// -bench-json <file> -bench-suite federation. -fuzz runs a seeded
// offline fuzzing campaign of n generated scenario specs through the
// determinism property (single-kernel vs federated byte-equality);
// -seed keys the campaign (default 1) and -fuzz-out selects where the
// shrunk minimal repro of a divergence is written (default
// examples/regressions, the ready-to-commit location). All experiments except
// loopback, replay and the wall-clock benchmark figures are
// deterministic; those use real UDP sockets and/or wall-clock time.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/apd"
	"repro/internal/exp"
	"repro/internal/logical"
	"repro/internal/scenario"
	"repro/internal/trace"
)

type experiment struct {
	name string
	desc string
	run  func()
}

func main() {
	quick := flag.Bool("quick", false, "run reduced workloads")
	only := flag.String("only", "", "run a single experiment")
	list := flag.Bool("list", false, "print the experiment registry and exit")
	scenarioFile := flag.String("scenario", "", "compile and run a declarative JSON scenario spec")
	monitors := flag.Bool("monitors", false, "attach the standard online safety monitors to the -scenario run (nonzero exit + trace-prefix dump on violation)")
	traceFile := flag.String("trace", "", "record a live loopback run and write its trace to this file")
	replayFile := flag.String("replay", "", "replay a recorded trace file in the simulator and verify outputs")
	benchJSON := flag.String("bench-json", "", "run the benchmark suites and write machine-readable results to this file")
	benchSuite := flag.String("bench-suite", "all", "suite for -bench-json: kernel, city, federation or all")
	benchFedJSON := flag.String("bench-fed-json", "", "deprecated alias for -bench-json <file> -bench-suite federation")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	fuzzN := flag.Int("fuzz", 0, "run a seeded fuzzing campaign of this many generated specs through the determinism property")
	fuzzSeed := flag.Uint64("seed", 1, "campaign seed for -fuzz (spec i is fuzzer.Gen(seed, i))")
	fuzzOut := flag.String("fuzz-out", "examples/regressions", "directory receiving the shrunk repro spec and report when -fuzz finds a divergence")
	flag.Parse()

	if (*cpuProfile != "" || *memProfile != "") && *list {
		fmt.Fprintln(os.Stderr, "experiments: -cpuprofile/-memprofile need a workload to profile and are mutually exclusive with -list")
		os.Exit(2)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}()
	}

	f1Trials, f5Inst, f5Frames, detFrames, detSeeds, toFrames := 20000, 20, 100000, 20000, 3, 5000
	meshN, meshRounds, meshNoise := 16, 40, 2000
	faultFrames := 2000
	topoCfg := exp.DefaultTopologySweepConfig()
	if *quick {
		f1Trials, f5Inst, f5Frames, detFrames, detSeeds, toFrames = 2000, 10, 5000, 2000, 2, 1000
		meshN, meshRounds, meshNoise = 8, 10, 200
		faultFrames = 400
		topoCfg.Platforms, topoCfg.Rounds, topoCfg.NoiseEvents = 8, 6, 100
	}

	experiments := []experiment{
		{"figure1", "E1: Figure 1 outcome distribution of non-blocking calls", func() {
			res, err := exp.RunFigure1(1, exp.DefaultFigure1Config(f1Trials))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("non-blocking client, %d trials:\n%s", f1Trials, res.Table())
			cfg := exp.DefaultFigure1Config(f1Trials / 10)
			cfg.Blocking = true
			fixed, err := exp.RunFigure1(1, cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\nblocking client (the fix), %d trials: P(3) = %.3f\n",
				cfg.Trials, fixed.Probability(3))
		}},

		{"figure5", "E3: Figure 5 baseline error prevalence across seeds", func() {
			res, err := exp.RunFigure5(2024, f5Inst, f5Frames)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(res.Table())
			min, mean, max := res.Stats()
			fmt.Printf("prevalence: min=%.3f%% mean=%.3f%% max=%.3f%%\n", min, mean, max)
			fmt.Println("paper      : min=0.018% mean=5.60% max=22.25% (100k frames)")
		}},

		{"deterministic", "E4: DEAR brake assistant, zero errors across physical seeds", func() {
			results, err := exp.RunDeterminismCheck(1, detSeeds, detFrames)
			if err != nil {
				log.Fatal(err)
			}
			for i, r := range results {
				fmt.Printf("seed %d: errors=%d processed=%d/%d latency mean=%v max=%v brakes=%d behaviour=%016x\n",
					i+1, r.Counters.TotalErrors(), r.Counters.FramesProcessed, detFrames,
					r.LatencyMean, r.LatencyMax, r.BrakeOns, r.BehaviorHash)
			}
			fmt.Println("behaviour identical across physical seeds; zero errors (paper: \"correct and deterministic execution\")")
		}},

		{"tradeoff", "E5: deadline scale vs latency/error trade-off sweep", func() {
			res, err := exp.RunTradeoff(1, toFrames, []float64{0.6, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95, 1.0, 1.2})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(res.Table())
			fmt.Println("lower deadline scale: lower latency, sporadic observable errors (Section IV-B trade-off)")
		}},

		{"split", "E4 extension: CV+EBA split onto a drifting third platform", func() {
			cfg := apd.DefaultDeterministicConfig(detFrames)
			cfg.SplitPlatforms = true
			cfg.DriftPPB = 30_000
			cfg.SyncBound = logical.Millisecond
			cfg.ClockError = 2500 * logical.Microsecond
			// Deadlines must additionally cover clock-resync jumps (2×bound).
			cfg.VADeadline += 3 * logical.Millisecond
			cfg.PreDeadline += 3 * logical.Millisecond
			cfg.CVDeadline += 3 * logical.Millisecond
			cfg.EBADeadline += 3 * logical.Millisecond
			d, err := apd.NewDeterministic(1, cfg)
			if err != nil {
				log.Fatal(err)
			}
			c := d.Run()
			single, err := apd.NewDeterministic(1, apd.DefaultDeterministicConfig(detFrames))
			if err != nil {
				log.Fatal(err)
			}
			single.Run()
			identical := len(d.BrakeSeq) == len(single.BrakeSeq)
			if identical {
				for i := range d.BrakeSeq {
					if d.BrakeSeq[i] != single.BrakeSeq[i] {
						identical = false
						break
					}
				}
			}
			fmt.Printf("CV+EBA on a third platform (±30ppm drift, ±1ms sync, E=2.5ms):\n")
			fmt.Printf("errors=%d processed=%d/%d, behaviour identical to single-platform: %v\n",
				c.TotalErrors(), c.FramesProcessed, detFrames, identical)
			fmt.Println("distribution across imperfectly-synchronized platforms is semantically invisible")
		}},

		{"latency", "E8: end-to-end latency profiles, baseline vs DEAR", func() {
			res, err := exp.RunLatencyComparison(1, toFrames)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(res.Table())
			fmt.Println("DEAR trades average latency for a bounded, error-free profile (Section IV-B)")
		}},

		{"overhead", "E6: wire-size overhead of the DEAR tag trailer", func() {
			r := exp.MeasureTagOverhead()
			fmt.Printf("frame notification: %d bytes untagged, %d bytes tagged (+%d bytes, %.2f%%)\n",
				r.PlainBytes, r.TaggedBytes, r.TaggedBytes-r.PlainBytes, 100*r.OverheadFraction)
			fmt.Printf("the %d-byte trailer is the entire wire cost of determinism\n",
				r.TaggedBytes-r.PlainBytes)
		}},

		{"loopback", "E9: tagged round trips over real loopback UDP sockets", func() {
			n := 500
			if *quick {
				n = 50
			}
			res, err := exp.RunLoopback(n, 5*time.Second)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(res.Table())
			fmt.Println("same runtime and tagged binding as above, real UDP sockets (E9; machine-dependent numbers)")
		}},

		{"mesh", "E10: federated N-platform mesh, byte-identical to single kernel", func() {
			cfg := exp.DefaultMeshConfig(meshN)
			cfg.Rounds = meshRounds
			cfg.NoiseEvents = meshNoise
			single, err := exp.RunMesh(1, cfg, 1)
			if err != nil {
				log.Fatal(err)
			}
			parts := 4
			fed, err := exp.RunMesh(1, cfg, parts)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(fed.Table())
			identical := fed.Report() == single.Report()
			fmt.Printf("%d platforms: single kernel fired %d events; %d federated kernels fired %d events over %d coordination rounds\n",
				meshN, single.EventsFired, fed.Partitions, fed.EventsFired, fed.CoordRounds)
			fmt.Printf("federated report byte-identical to single-kernel report: %v\n", identical)
			if !identical {
				log.Fatal("E10 determinism gate FAILED")
			}
			fmt.Println("conservative synchronization shards the simulation without changing a single byte (E10)")
		}},

		{"faults", "E11: deterministic fault injection & recovery under sharding", func() {
			meshCfg := exp.DefaultFaultMeshConfig(meshN)
			res, err := exp.RunFaults(1, faultFrames, meshCfg, 4)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("brake assistant under a seeded fault schedule (loss, partition, jitter bursts), %d frames:\n", faultFrames)
			fmt.Print(res.Pipeline.Table())
			fmt.Println("baseline computes on corrupt inputs (silent); every DEAR failure is a counted, observable error")
			errsTotal := 0
			for _, row := range res.Mesh.Rows {
				errsTotal += row.Errors
			}
			fmt.Printf("\nfaulted federated mesh (%d platforms, drop rate %.0f%%, partition window, crash+restart of platform %d): %d observable call failures\n",
				meshN, 100*meshCfg.Faults.DropRate, meshCfg.Crash.Platform, errsTotal)
			if _, err := exp.RunFaultsDeterminismCheck(1, 3, meshCfg, []int{2, 3, 4}); err != nil {
				log.Fatalf("E11 determinism gate FAILED: %v", err)
			}
			fmt.Println("E11 determinism gate: byte-identical reports across 3 seeds × {1,2,3,4} partitions under the full fault schedule")
		}},

		{"replay", "E13: record a live UDP run, replay it bit-for-bit in the simulator", func() {
			n := 200
			if *quick {
				n = 40
			}
			res, err := exp.RunReplay(n, 5*time.Second)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(res.Table())
			if !res.Match() {
				log.Fatalf("E13 replay gate FAILED: first divergence: %s", res.Divergence)
			}
			fmt.Println("replayed outputs byte-identical to the recorded physical run (E13): the application is a pure function of its tagged inputs")
		}},

		{"city", "E14: city-scale scenario — throughput and byte-equality at N=5000", func() {
			cityN, cityRounds := 5000, 2
			if *quick {
				cityN = 800
			}
			cfg := exp.CityConfig{Platforms: cityN, Rounds: cityRounds, Partitions: 4, Seed: 1}
			res, err := exp.RunCityScale(cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(res.PerfReport())
			parts := []int{1, 4, 16}
			if *quick {
				parts = []int{1, 4}
			}
			if _, err := exp.RunCityDeterminismCheck(1, 2, cfg, parts); err != nil {
				log.Fatalf("E14 determinism gate FAILED: %v", err)
			}
			fmt.Printf("E14 determinism gate: byte-identical reports across 2 seeds × partitions %v at %d platforms\n",
				parts, cityN)
			fmt.Println("interest-based SD keeps the control plane sub-quadratic; the report is one fixed-size row per platform")
		}},

		{"monitors", "E16: online runtime verification — deterministic verdicts, violation repro", func() {
			seeds := 3
			parts := []int{1, 2, 4}
			if *quick {
				seeds = 2
			}
			cfg := exp.MonitorConfig{}
			reports, err := exp.RunMonitorDeterminismCheck(1, seeds, cfg, parts)
			if err != nil {
				log.Fatalf("E16 determinism gate FAILED: %v", err)
			}
			fmt.Printf("E16 determinism gate: monitor verdicts byte-identical across %d seeds × partitions %v\n",
				seeds, parts)
			fmt.Printf("reference verdicts (seed 1):\n%s", tailLines(reports[0], 4))

			// The violation-repro round trip: a deliberately broken spec
			// trips the responded-within monitor, the violated run dumps
			// its trace prefix, and offline re-evaluation of the dump
			// reproduces the violation.
			res, err := exp.RunScenario(exp.BrokenMonitoredSpec(1))
			if err != nil {
				log.Fatal(err)
			}
			if res.MonitorViolations == 0 {
				log.Fatal("E16 non-vacuity FAILED: the broken spec tripped no monitor")
			}
			dump, err := os.CreateTemp("", "e16-violation-*.trace")
			if err != nil {
				log.Fatal(err)
			}
			dump.Close()
			defer os.Remove(dump.Name())
			first, err := exp.DumpViolationPrefix(res, dump.Name())
			if err != nil {
				log.Fatal(err)
			}
			replayed, err := exp.ReplayViolationDump(dump.Name(), exp.BrokenMonitoredSpec(1))
			if err != nil {
				log.Fatal(err)
			}
			if !exp.ContainsViolation(replayed, first) {
				log.Fatalf("E16 violation repro FAILED: replayed verdicts do not contain %s", first)
			}
			fmt.Printf("violation repro: broken spec tripped %d violations; dumped prefix replays to the same first violation (%s)\n",
				res.MonitorViolations, first)
		}},

		{"topo", "E12: topology sweep (star/ring/tree/random-regular × partitions)", func() {
			res, err := exp.RunTopologySweep(1, topoCfg)
			if err != nil {
				log.Fatalf("E12 sweep FAILED: %v", err)
			}
			fmt.Print(res.Table())
			fmt.Printf("every shape byte-identical across partition counts %v at seed %d\n",
				topoCfg.PartitionCounts, res.Seed)
			gateSeeds := 3
			if _, err := exp.RunTopologyDeterminismCheck(1, gateSeeds, topoCfg); err != nil {
				log.Fatalf("E12 determinism gate FAILED: %v", err)
			}
			fmt.Printf("E12 determinism gate: byte-identical federated vs single-kernel reports for every shape × partitions %v across %d seeds\n",
				topoCfg.PartitionCounts, gateSeeds)
		}},
	}

	if *list {
		for _, e := range experiments {
			fmt.Printf("%-14s %s\n", e.name, e.desc)
		}
		return
	}

	if *traceFile != "" && *replayFile != "" {
		fmt.Fprintln(os.Stderr, "experiments: -trace and -replay are mutually exclusive (record first, then replay the file)")
		os.Exit(2)
	}
	if (*traceFile != "" || *replayFile != "") && (*only != "" || *scenarioFile != "") {
		fmt.Fprintln(os.Stderr, "experiments: -trace/-replay replace the registry and are mutually exclusive with -only and -scenario")
		os.Exit(2)
	}
	if *fuzzN > 0 {
		if *only != "" || *scenarioFile != "" || *traceFile != "" || *replayFile != "" || *benchJSON != "" || *benchFedJSON != "" {
			fmt.Fprintln(os.Stderr, "experiments: -fuzz replaces the registry and is mutually exclusive with -only, -scenario, -trace, -replay and the bench suites")
			os.Exit(2)
		}
		runFuzz(*fuzzN, *fuzzSeed, *fuzzOut)
		return
	}
	if *benchJSON != "" && *benchFedJSON != "" {
		fmt.Fprintln(os.Stderr, "experiments: -bench-json and its deprecated alias -bench-fed-json are mutually exclusive (use -bench-json with -bench-suite)")
		os.Exit(2)
	}
	if *benchFedJSON != "" && *benchSuite != "all" {
		fmt.Fprintln(os.Stderr, "experiments: -bench-suite only applies to -bench-json (the -bench-fed-json alias is pinned to the federation suite)")
		os.Exit(2)
	}
	if *benchSuite != "all" && *benchJSON == "" {
		fmt.Fprintln(os.Stderr, "experiments: -bench-suite requires -bench-json")
		os.Exit(2)
	}
	if *benchJSON != "" || *benchFedJSON != "" {
		if *only != "" || *scenarioFile != "" || *traceFile != "" || *replayFile != "" {
			fmt.Fprintln(os.Stderr, "experiments: -bench-json/-bench-fed-json replace the registry and are mutually exclusive with -only, -scenario, -trace and -replay")
			os.Exit(2)
		}
		path, suite := *benchJSON, *benchSuite
		if *benchFedJSON != "" {
			fmt.Fprintln(os.Stderr, "experiments: -bench-fed-json is deprecated; use -bench-json <file> -bench-suite federation")
			path, suite = *benchFedJSON, "federation"
		}
		switch suite {
		case "all", "kernel", "city", "federation", "monitor":
		default:
			fmt.Fprintf(os.Stderr, "experiments: unknown -bench-suite %q; valid choices: kernel, city, federation, monitor, all\n", suite)
			os.Exit(2)
		}
		runBench(path, *quick, suite)
		return
	}
	if *traceFile != "" {
		n := 200
		if *quick {
			n = 40
		}
		runTraceRecord(*traceFile, n)
		return
	}
	if *replayFile != "" {
		runTraceReplay(*replayFile)
		return
	}

	if *monitors && *scenarioFile == "" {
		fmt.Fprintln(os.Stderr, "experiments: -monitors attaches the safety library to a spec run and requires -scenario")
		os.Exit(2)
	}
	if *scenarioFile != "" {
		if *only != "" {
			fmt.Fprintln(os.Stderr, "experiments: -scenario and -only are mutually exclusive (a JSON spec replaces the registry)")
			os.Exit(2)
		}
		runScenarioFile(*scenarioFile, *monitors)
		return
	}

	if *only != "" {
		found := false
		for _, e := range experiments {
			if e.name == *only {
				found = true
				break
			}
		}
		if !found {
			names := make([]string, len(experiments))
			for i, e := range experiments {
				names[i] = e.name
			}
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q; valid choices: %s\n",
				*only, strings.Join(names, ", "))
			os.Exit(2)
		}
	}

	for _, e := range experiments {
		if *only != "" && *only != e.name {
			continue
		}
		t0 := time.Now()
		fmt.Printf("=== %s ===\n", e.name)
		e.run()
		fmt.Printf("(%s completed in %v)\n\n", e.name, time.Since(t0).Round(time.Millisecond))
	}
}

// runTraceRecord records a live n-round-trip loopback run over real
// UDP sockets and persists its logical event trace (tagged inputs in
// full, outputs as digests) to path, in the deterministic binary
// format. Replay it later with -replay, or inspect it with
// someip-dump -trace.
func runTraceRecord(path string, n int) {
	t0 := time.Now()
	rec, live, err := exp.RecordLoopback(n, 5*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	if err := trace.WriteFile(path, rec); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d round trips over real UDP in %v (rtt mean %v)\n",
		live.Completed, time.Since(t0).Round(time.Millisecond), live.RTTMean)
	fmt.Printf("trace: %d events (%d stored inputs, %d output digests) -> %s\n",
		rec.Len(), rec.Filter(trace.KindRecv).Len(), rec.Filter(trace.KindSend).Len(), path)
}

// runTraceReplay loads a recorded trace, re-executes it inside a
// fresh deterministic kernel and diffs the replayed outputs against
// the recorded ones (times stripped). Divergence is fatal — the exit
// status is the CI contract.
func runTraceReplay(path string) {
	rec, err := trace.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	replayed, err := exp.ReplaySimulated(rec)
	if err != nil {
		log.Fatal(err)
	}
	if d := trace.FirstDivergence(rec.WithoutTimes(), replayed.WithoutTimes()); d != nil {
		log.Fatalf("replay DIVERGED from the recorded run: %s", d)
	}
	fmt.Printf("replayed %s: %d events reproduced bit-for-bit (%d inputs re-injected, %d outputs matched)\n",
		path, replayed.Len(), rec.Filter(trace.KindRecv).Len(), rec.Filter(trace.KindSend).Len())
}

// runScenarioFile compiles a declarative JSON spec, prints its
// canonical world description, executes it at the spec's partition
// count, and — when the spec asks for a federated run — verifies the
// byte-equality determinism gate against the single-kernel reference.
// With monitors set, the standard online safety library rides the run
// (unless the spec carries its own monitors block, which wins); a
// violation dumps the trace prefix up to the first violation to
// <path>.violation.trace and exits nonzero, mirroring the -replay
// divergence contract.
func runScenarioFile(path string, monitors bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := scenario.ParseSpec(data)
	if err != nil {
		log.Fatal(err)
	}
	if monitors && spec.Monitors == nil {
		spec.Monitors = scenario.DefaultMonitors(spec)
	}
	desc, err := scenario.Describe(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== scenario %s ===\n%s\n", path, desc)
	t0 := time.Now()
	res, err := exp.RunScenario(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Report())
	if len(res.Verdicts) > 0 {
		fmt.Print(res.VerdictReport())
	}
	fmt.Printf("(%d partitions, %d events, %d coordination rounds, %v)\n",
		res.Partitions, res.EventsFired, res.CoordRounds, time.Since(t0).Round(time.Millisecond))
	if res.MonitorViolations > 0 {
		dumpPath := path + ".violation.trace"
		first, dumpErr := exp.DumpViolationPrefix(res, dumpPath)
		if dumpErr != nil {
			log.Fatalf("monitor gate FAILED: %d violations (prefix dump failed: %v)",
				res.MonitorViolations, dumpErr)
		}
		log.Fatalf("monitor gate FAILED: %d violations; first: %s\ntrace prefix dumped to %s (re-evaluate offline with monitor.Evaluate)",
			res.MonitorViolations, first, dumpPath)
	}
	if len(res.Verdicts) > 0 {
		fmt.Printf("monitor gate: %d obligations checked, 0 violations\n", res.MonitorChecks)
	}
	if res.Partitions > 1 {
		div, err := exp.CompareSpecModes(spec, []int{res.Partitions}, nil)
		if err != nil {
			log.Fatal(err)
		}
		if div != nil {
			log.Fatalf("determinism gate FAILED:\n%s", div)
		}
		fmt.Println("determinism gate: federated report and trace byte-identical to single-kernel run")
	}
}

// tailLines returns the last n lines of s (all of s when shorter) —
// used to surface the verdict block of a combined report.
func tailLines(s string, n int) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) > n {
		lines = lines[len(lines)-n:]
	}
	return strings.Join(lines, "\n") + "\n"
}
