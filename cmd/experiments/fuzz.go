package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/fuzzer"
)

// runFuzz executes a seeded offline fuzzing campaign: n generated
// specs, each run single-kernel vs federated across partition counts
// and GOMAXPROCS values, reports compared byte-for-byte. The first
// divergence is shrunk to a minimal spec and emitted under outDir as
// ready-to-commit JSON plus a FirstDivergence report; the nonzero
// exit status is the CI contract. A clean campaign exits zero.
func runFuzz(n int, seed uint64, outDir string) {
	t0 := time.Now()
	fail, err := fuzzer.Run(fuzzer.Options{
		Seed:       seed,
		Iterations: n,
		OutDir:     outDir,
		Log: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if fail != nil {
		fmt.Printf("\n%s\n", fail.Report)
		fmt.Fprintf(os.Stderr, "experiments: %v\n", fail)
		fmt.Fprintf(os.Stderr, "experiments: minimal repro spec: %s\n", fail.SpecPath)
		fmt.Fprintf(os.Stderr, "experiments: divergence report:  %s\n", fail.ReportPath)
		fmt.Fprintf(os.Stderr, "experiments: commit the spec under examples/regressions/ once fixed — the regression replay test gates it forever\n")
		os.Exit(1)
	}
	fmt.Printf("fuzz campaign clean: %d specs upheld the determinism contract (seed %d, %v)\n",
		n, seed, time.Since(t0).Round(time.Millisecond))
}
