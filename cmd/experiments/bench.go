package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"runtime"
	"testing"

	"repro/internal/des"
	"repro/internal/exp"
	"repro/internal/logical"
	"repro/internal/monitor"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// The -bench-json mode runs the performance benchmark suites
// programmatically (testing.Benchmark over the same workloads as the
// go-test benchmarks they mirror) and writes one machine-readable
// document — the files CI publishes and the repo commits as reference
// points (BENCH_kernel.json, BENCH_city.json, BENCH_federation.json,
// regenerated per suite with -bench-suite). Wall-clock figures are
// machine-dependent; the byte-equality gates inside each workload are
// not, and a gate failure aborts the run with a nonzero exit.

// benchResult is one benchmark's machine-readable summary line.
type benchResult struct {
	// Name identifies the mirrored benchmark (and sub-case).
	Name string `json:"name"`
	// Iterations is the b.N testing.Benchmark settled on.
	Iterations int `json:"iterations"`
	// NsPerOp is wall-clock nanoseconds per iteration.
	NsPerOp float64 `json:"nsPerOp"`
	// AllocsPerOp is heap allocations per iteration.
	AllocsPerOp int64 `json:"allocsPerOp"`
	// BytesPerOp is heap bytes per iteration.
	BytesPerOp int64 `json:"bytesPerOp"`
	// Metrics carries the benchmark's custom b.ReportMetric figures
	// (msg/sec/core, events/op, ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// benchFile is the top-level JSON document -bench-json writes.
type benchFile struct {
	// GoVersion and GOMAXPROCS qualify the machine-dependent numbers.
	GoVersion  string `json:"goVersion"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Benchmarks lists every suite entry in run order.
	Benchmarks []benchResult `json:"benchmarks"`
}

// summarize folds a testing.BenchmarkResult into the JSON shape.
func summarize(name string, r testing.BenchmarkResult) benchResult {
	out := benchResult{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if len(r.Extra) > 0 {
		out.Metrics = make(map[string]float64, len(r.Extra))
		for k, v := range r.Extra {
			out.Metrics[k] = v
		}
	}
	return out
}

// runBench executes the selected suite ("kernel", "city",
// "federation", "monitor" or "all") and writes the combined JSON
// document to path.
func runBench(path string, quick bool, suite string) {
	var results []benchResult
	if suite == "all" || suite == "kernel" {
		results = append(results, kernelSuite()...)
	}
	if suite == "all" || suite == "city" {
		results = append(results, citySuite(quick)...)
	}
	if suite == "all" || suite == "federation" {
		results = append(results, federationSuite(quick)...)
	}
	if suite == "all" || suite == "monitor" {
		results = append(results, monitorSuite(quick)...)
	}
	writeBenchFile(path, results)
}

// kernelSuite mirrors the des/simnet hot-path microbenchmarks
// (BenchmarkKernelFire, BenchmarkProcessSwitch, BenchmarkMailboxTimedPut,
// BenchmarkSimnetDeliver): one converted closure-free path each, with
// allocs/op as the figure of interest — the committed BENCH_kernel.json
// reference pins them at zero.
func kernelSuite() []benchResult {
	var results []benchResult

	results = append(results, summarize("KernelFire", testing.Benchmark(func(b *testing.B) {
		k := des.NewKernel(1)
		count := 0
		var chain func(any)
		chain = func(any) {
			count++
			if count < b.N {
				k.AfterTransientFn(logical.Microsecond, chain, nil)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		k.AtTransientFn(0, chain, nil)
		k.RunAll()
	})))

	results = append(results, summarize("ProcessSwitch", testing.Benchmark(func(b *testing.B) {
		k := des.NewKernel(1)
		k.Spawn("switcher", func(p *des.Process) {
			for i := 0; i < b.N; i++ {
				p.Sleep(logical.Microsecond)
			}
		})
		b.ReportAllocs()
		b.ResetTimer()
		k.RunAll()
	})))

	results = append(results, summarize("MailboxTimedPut", testing.Benchmark(func(b *testing.B) {
		k := des.NewKernel(1)
		m := des.NewMailbox[int](k, "bench")
		m.PutAfter(logical.Microsecond, 0)
		k.RunAll()
		m.TryRecv()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.PutAfter(logical.Microsecond, i)
			k.RunAll()
			m.TryRecv()
		}
	})))

	results = append(results, summarize("SimnetDeliver", testing.Benchmark(func(b *testing.B) {
		k := des.NewKernel(1)
		n := simnet.NewNetwork(k, simnet.Config{})
		src := n.AddHost("src", nil)
		dst := n.AddHost("dst", nil)
		from, err := src.Bind(1000)
		if err != nil {
			b.Fatal(err)
		}
		to, err := dst.Bind(2000)
		if err != nil {
			b.Fatal(err)
		}
		to.OnReceive(func(simnet.Datagram) {})
		from.Send(to.Addr(), nil)
		k.RunAll()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			from.Send(to.Addr(), nil)
			k.RunAll()
		}
	})))

	return results
}

// citySuite mirrors BenchmarkCityScale (bench_test.go) and the trace
// recorder gate — the BENCH_city.json reference.
func citySuite(quick bool) []benchResult {
	cityN := exp.DefaultCityPlatforms
	if quick {
		cityN = 800
	}
	var results []benchResult

	// Mirrors BenchmarkCityScale (bench_test.go): one iteration = one
	// city run federated over 4 partitions, byte-equality-gated against
	// the single-kernel reference.
	cfg := exp.CityConfig{Platforms: cityN, Rounds: 2, Partitions: 4, Seed: 1}
	single := cfg
	single.Partitions = 1
	ref, err := exp.RunScenario(exp.CitySpec(single))
	if err != nil {
		log.Fatal(err)
	}
	refReport := ref.Report()
	results = append(results, summarize("CityScale", testing.Benchmark(func(b *testing.B) {
		var last *exp.CityScaleResult
		for i := 0; i < b.N; i++ {
			res, err := exp.RunCityScale(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if res.Result.Report() != refReport {
				b.Fatal("E14 determinism gate failed in -bench-json")
			}
			last = res
		}
		b.ReportMetric(last.MsgPerSecPerCore, "msg/sec/core")
		b.ReportMetric(float64(last.Messages), "messages/op")
		b.ReportMetric(float64(last.Result.CtrlFanout), "ctrl-fanout/op")
	})))

	// Mirrors BenchmarkTraceRecord (internal/trace): the recorder
	// hot-path gate — digest-only record, 0 allocs/op.
	results = append(results, summarize("TraceRecord", testing.Benchmark(func(b *testing.B) {
		r := trace.NewRecorder(1 << 14)
		payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
		r.TraceEvent(0, "plat00.client", trace.KindCall, payload)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.TraceEvent(logical.Time(i), "plat00.client", trace.KindCall, payload)
		}
	})))

	return results
}

// federationWorkload builds the E10 federation-scaling configuration
// shared by every federation benchmark entry, plus the single-kernel
// reference report its byte-equality gate compares against.
func federationWorkload() (exp.MeshConfig, string) {
	meshCfg := exp.DefaultMeshConfig(16)
	meshCfg.Rounds = 10
	meshCfg.NoiseEvents = 3000
	meshCfg.NoiseInterval = 20 * logical.Microsecond
	meshCfg.LinkLatency = 2 * logical.Millisecond
	meshRef, err := exp.RunMesh(1, meshCfg, 1)
	if err != nil {
		log.Fatal(err)
	}
	return meshCfg, meshRef.Report()
}

// federationBench returns the benchmark body for one partition count of
// the federation-scaling workload, reporting the coordination metrics
// next to throughput.
func federationBench(meshCfg exp.MeshConfig, refReport string, parts int) func(b *testing.B) {
	return func(b *testing.B) {
		var events, rounds, grants uint64
		var parked int64
		for i := 0; i < b.N; i++ {
			res, err := exp.RunMesh(1, meshCfg, parts)
			if err != nil {
				b.Fatal(err)
			}
			if res.Report() != refReport {
				b.Fatal("E10 determinism gate failed in -bench-json")
			}
			events = res.EventsFired
			rounds = res.CoordRounds
			grants = res.CoordGrants
			parked += res.CoordParkedNs
		}
		b.ReportMetric(float64(events), "events/op")
		b.ReportMetric(float64(rounds), "sync-rounds/op")
		b.ReportMetric(float64(grants), "grants/op")
		b.ReportMetric(float64(parked)/float64(b.N), "parked-ns/op")
	}
}

// federationSuite runs the federation perf-trajectory suite — the E10
// scaling workload across a GOMAXPROCS x partitions matrix — the
// BENCH_federation.json reference. The GOMAXPROCS axis is the point: on
// one scheduler thread the asynchronous coordinator degenerates to
// lock-step cadence (the conservative span/lookahead floor), while with
// parallelism the same run overlaps partition windows instead of
// serializing them; recording both exposes the coordination tax
// separately from raw throughput. CI gates sync-rounds/op and the
// allocation budget at 4 partitions against the committed copy.
func federationSuite(quick bool) []benchResult {
	meshCfg, meshRefReport := federationWorkload()
	partCounts := []int{1, 2, 4, 8}
	if quick {
		partCounts = []int{1, 4}
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	var results []benchResult
	for _, gmp := range []int{1, 4} {
		runtime.GOMAXPROCS(gmp)
		for _, parts := range partCounts {
			name := fmt.Sprintf("FederationScaling/gomaxprocs-%d/partitions-%d", gmp, parts)
			results = append(results, summarize(name,
				testing.Benchmark(federationBench(meshCfg, meshRefReport, parts))))
		}
	}
	runtime.GOMAXPROCS(prev)
	return results
}

// monitorSuite runs the online-verification suite — the
// BENCH_monitor.json reference: the engine hot path (mirroring
// BenchmarkMonitor, allocs/op pinned at zero by the committed
// reference) and the monitored mesh, whose byte-equality gate covers
// the verdict report and whose checks/op metric is the observability
// tax figure.
func monitorSuite(quick bool) []benchResult {
	var results []benchResult

	// Mirrors BenchmarkMonitor (internal/monitor): one digest-only
	// record through the full standard safety library — 0 allocs/op.
	results = append(results, summarize("MonitorRecord", testing.Benchmark(func(b *testing.B) {
		eng := monitor.NewEngine(
			monitor.NoSilentCorruption(),
			monitor.RespondedWithin(logical.Millisecond),
			monitor.ReboundWithin(logical.Millisecond),
		)
		payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
		eng.TraceEvent(0, "plat00.client", trace.KindServe, payload)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.TraceEvent(logical.Time(i), "plat00.client", trace.KindServe, payload)
		}
	})))

	// The monitored E16 mesh: every iteration runs federated with the
	// safety library attached and must reproduce the single-kernel
	// reference bytes — report and verdicts both.
	cfg := exp.MonitorConfig{Partitions: 4, Seed: 1}
	if quick {
		cfg.Rounds = 6
	}
	single := cfg
	single.Partitions = 1
	ref, err := exp.RunScenario(exp.MonitoredSpec(single))
	if err != nil {
		log.Fatal(err)
	}
	refReport := ref.Report() + ref.VerdictReport()
	results = append(results, summarize("MonitoredMesh", testing.Benchmark(func(b *testing.B) {
		var checks, violations uint64
		for i := 0; i < b.N; i++ {
			res, err := exp.RunScenario(exp.MonitoredSpec(cfg))
			if err != nil {
				b.Fatal(err)
			}
			if res.Report()+res.VerdictReport() != refReport {
				b.Fatal("E16 determinism gate failed in -bench-json")
			}
			checks = res.MonitorChecks
			violations = res.MonitorViolations
		}
		b.ReportMetric(float64(checks), "checks/op")
		b.ReportMetric(float64(violations), "violations/op")
	})))

	return results
}

// writeBenchFile marshals the suite results, writes them to path and
// prints a human-readable echo.
func writeBenchFile(path string, results []benchResult) {
	doc := benchFile{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: results,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("%-44s %8d iter  %14.0f ns/op  %6d allocs/op", r.Name, r.Iterations, r.NsPerOp, r.AllocsPerOp)
		if v, ok := r.Metrics["msg/sec/core"]; ok {
			fmt.Printf("  %10.0f msg/sec/core", v)
		}
		if v, ok := r.Metrics["sync-rounds/op"]; ok {
			fmt.Printf("  %6.0f sync-rounds/op", v)
		}
		fmt.Println()
	}
	fmt.Printf("wrote %s\n", path)
}
