// Command figure1 reproduces Figure 1 of the paper: the probability
// distribution of the value printed by a client that manipulates a
// server's state through non-blocking AUTOSAR AP method calls.
//
// Usage:
//
//	figure1 [-trials N] [-seed S] [-workers W] [-blocking]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/exp"
	"repro/internal/metrics"
)

func main() {
	trials := flag.Int("trials", 20000, "number of trials")
	seed := flag.Uint64("seed", 1, "simulation seed")
	workers := flag.Int("workers", 4, "server worker threads")
	blocking := flag.Bool("blocking", false, "serialize calls by waiting on futures (the fix)")
	csv := flag.Bool("csv", false, "emit CSV instead of a text table")
	flag.Parse()

	cfg := exp.DefaultFigure1Config(*trials)
	cfg.Workers = *workers
	cfg.Blocking = *blocking
	res, err := exp.RunFigure1(*seed, cfg)
	if err != nil {
		log.Fatalf("figure1: %v", err)
	}

	mode := "non-blocking (Figure 1)"
	if *blocking {
		mode = "blocking futures (serialized)"
	}
	fmt.Printf("Figure 1 — client/server value distribution, %s\n", mode)
	fmt.Printf("trials=%d workers=%d seed=%d\n\n", *trials, *workers, *seed)
	if *csv {
		fmt.Print(res.Table().CSV())
	} else {
		fmt.Print(res.Table())
		fmt.Println()
		h := metrics.NewHistogram(0, 4, 4)
		for v := 0; v <= 3; v++ {
			for i := 0; i < res.Counts[v]; i++ {
				h.Add(float64(v))
			}
		}
		fmt.Print(h.Render(40, func(i int) string { return fmt.Sprintf("value %d", i) }))
	}
	if res.DistinctOutcomes() > 1 && *blocking {
		fmt.Fprintln(os.Stderr, "warning: blocking client produced multiple outcomes")
		os.Exit(1)
	}
}
