package dear_test

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"repro/internal/ara"
	"repro/internal/des"
	"repro/internal/exp"
	"repro/internal/logical"
	"repro/internal/simnet"
)

// TestFederationRoundsBudget is the coordination-cost regression gate:
// it re-runs the FederationScaling workload at 4 partitions once and
// fails if the coordination-round count regresses more than 25% above
// the committed BENCH_federation.json reference (the gomaxprocs-1
// entry, where the coordinator's schedule is fully serialized and the
// round count is reproducible). Rounds only shrink with parallelism —
// eager re-grants bypass the all-parked sweep the counter tracks — so
// the serialized reference is an upper bound on any healthy schedule.
// Grants are budgeted the same way. CI runs this next to the federation
// race tests; a wall-clock benchmark would be noise-bound here, but the
// round and grant counts are structural.
func TestFederationRoundsBudget(t *testing.T) {
	data, err := os.ReadFile("BENCH_federation.json")
	if err != nil {
		t.Fatalf("missing committed federation benchmark reference: %v", err)
	}
	var doc struct {
		Benchmarks []struct {
			Name    string             `json:"name"`
			Metrics map[string]float64 `json:"metrics"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	var refRounds, refGrants float64
	for _, b := range doc.Benchmarks {
		if b.Name == "FederationScaling/gomaxprocs-1/partitions-4" {
			refRounds = b.Metrics["sync-rounds/op"]
			refGrants = b.Metrics["grants/op"]
		}
	}
	if refRounds == 0 || refGrants == 0 {
		t.Fatal("BENCH_federation.json lacks the gomaxprocs-1/partitions-4 reference entry")
	}

	// The exact workload of BenchmarkFederationScaling / -bench-fed-json.
	cfg := exp.DefaultMeshConfig(16)
	cfg.Rounds = 10
	cfg.NoiseEvents = 3000
	cfg.NoiseInterval = 20 * logical.Microsecond
	cfg.LinkLatency = 2 * logical.Millisecond
	res, err := exp.RunMesh(1, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := float64(res.CoordRounds); got > refRounds*1.25 {
		t.Errorf("sync rounds at 4 partitions regressed: %v > committed %v +25%%", got, refRounds)
	}
	if got := float64(res.CoordGrants); got > refGrants*1.25 {
		t.Errorf("grant count at 4 partitions regressed: %v > committed %v +25%%", got, refGrants)
	}
}

// TestFederationAllocBudget is the allocation regression gate of the
// kernel hot-path work: it re-runs the FederationScaling workload at 4
// partitions and fails if heap allocations per fired event exceed the
// committed BENCH_federation.json reference (gomaxprocs-1/partitions-4,
// allocsPerOp over events/op) by more than 25%. Allocation counts are
// not byte-exact across runs — goroutine scheduling shifts amortized
// growth — but a pooled-event kernel sits far enough below the closure-
// per-event one (~3x) that 25% headroom separates noise from regression.
func TestFederationAllocBudget(t *testing.T) {
	data, err := os.ReadFile("BENCH_federation.json")
	if err != nil {
		t.Fatalf("missing committed federation benchmark reference: %v", err)
	}
	var doc struct {
		Benchmarks []struct {
			Name        string             `json:"name"`
			AllocsPerOp int64              `json:"allocsPerOp"`
			Metrics     map[string]float64 `json:"metrics"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	var refAllocsPerEvent float64
	for _, b := range doc.Benchmarks {
		if b.Name == "FederationScaling/gomaxprocs-1/partitions-4" {
			if ev := b.Metrics["events/op"]; ev > 0 {
				refAllocsPerEvent = float64(b.AllocsPerOp) / ev
			}
		}
	}
	if refAllocsPerEvent == 0 {
		t.Fatal("BENCH_federation.json lacks allocsPerOp for the gomaxprocs-1/partitions-4 reference entry")
	}

	cfg := exp.DefaultMeshConfig(16)
	cfg.Rounds = 10
	cfg.NoiseEvents = 3000
	cfg.NoiseInterval = 20 * logical.Microsecond
	cfg.LinkLatency = 2 * logical.Millisecond
	// Warm-up run: one-time costs (lazily grown pools, map growth) are
	// not what the per-event budget tracks.
	if _, err := exp.RunMesh(1, cfg, 4); err != nil {
		t.Fatal(err)
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	res, err := exp.RunMesh(1, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	allocsPerEvent := float64(after.Mallocs-before.Mallocs) / float64(res.EventsFired)
	if allocsPerEvent > refAllocsPerEvent*1.25 {
		t.Errorf("allocs/event at 4 partitions regressed: %.3f > committed %.3f +25%%",
			allocsPerEvent, refAllocsPerEvent)
	}
}

// TestTransientPathZeroAlloc pins the zero-allocation claims of the
// closure-free hot paths: once pools are warm, a schedule+fire round
// trip on simnet datagram delivery, a mailbox timed put and a future
// resolution with registered callbacks must not allocate at all. These
// are exact pins, not budgets — a single stray closure or interface box
// on any of these paths fails the gate.
func TestTransientPathZeroAlloc(t *testing.T) {
	const runs = 100

	t.Run("SimnetDeliver", func(t *testing.T) {
		k := des.NewKernel(1)
		n := simnet.NewNetwork(k, simnet.Config{})
		src := n.AddHost("src", nil)
		dst := n.AddHost("dst", nil)
		from, err := src.Bind(1000)
		if err != nil {
			t.Fatal(err)
		}
		to, err := dst.Bind(2000)
		if err != nil {
			t.Fatal(err)
		}
		received := 0
		to.OnReceive(func(simnet.Datagram) { received++ })
		// The empty payload isolates the delivery machinery from the
		// caller's payload copy (which is proportional to message size,
		// not a per-event overhead).
		if avg := testing.AllocsPerRun(runs, func() {
			from.Send(to.Addr(), nil)
			k.RunAll()
		}); avg != 0 {
			t.Errorf("simnet delivery schedule+fire allocates %.1f per op, want 0", avg)
		}
		if received != runs+1 {
			t.Fatalf("delivered %d of %d", received, runs+1)
		}
	})

	t.Run("MailboxTimedPut", func(t *testing.T) {
		k := des.NewKernel(1)
		m := des.NewMailbox[int](k, "gate")
		if avg := testing.AllocsPerRun(runs, func() {
			m.PutAfter(logical.Microsecond, 7)
			k.RunAll()
			if _, ok := m.TryRecv(); !ok {
				t.Fatal("timed put not delivered")
			}
		}); avg != 0 {
			t.Errorf("mailbox timed put schedule+fire allocates %.1f per op, want 0", avg)
		}
	})

	t.Run("FutureResolve", func(t *testing.T) {
		k := des.NewKernel(1)
		// Futures (and their callback registrations) are created outside
		// the measured region: the gate pins the resolution+delivery
		// round trip, not construction.
		fired := 0
		cb := func(ara.Result) { fired++ }
		futures := make([]*ara.Future, runs+1)
		for i := range futures {
			futures[i] = ara.NewFuture(k)
			futures[i].Then(cb)
		}
		i := 0
		if avg := testing.AllocsPerRun(runs, func() {
			futures[i].Resolve(ara.Result{})
			i++
			k.RunAll()
		}); avg != 0 {
			t.Errorf("future resolution schedule+fire allocates %.1f per op, want 0", avg)
		}
		if fired != runs+1 {
			t.Fatalf("fired %d of %d callbacks", fired, runs+1)
		}
	})
}
