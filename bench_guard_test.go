package dear_test

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/exp"
	"repro/internal/logical"
)

// TestFederationRoundsBudget is the coordination-cost regression gate:
// it re-runs the FederationScaling workload at 4 partitions once and
// fails if the coordination-round count regresses more than 25% above
// the committed BENCH_federation.json reference (the gomaxprocs-1
// entry, where the coordinator's schedule is fully serialized and the
// round count is reproducible). Rounds only shrink with parallelism —
// eager re-grants bypass the all-parked sweep the counter tracks — so
// the serialized reference is an upper bound on any healthy schedule.
// Grants are budgeted the same way. CI runs this next to the federation
// race tests; a wall-clock benchmark would be noise-bound here, but the
// round and grant counts are structural.
func TestFederationRoundsBudget(t *testing.T) {
	data, err := os.ReadFile("BENCH_federation.json")
	if err != nil {
		t.Fatalf("missing committed federation benchmark reference: %v", err)
	}
	var doc struct {
		Benchmarks []struct {
			Name    string             `json:"name"`
			Metrics map[string]float64 `json:"metrics"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	var refRounds, refGrants float64
	for _, b := range doc.Benchmarks {
		if b.Name == "FederationScaling/gomaxprocs-1/partitions-4" {
			refRounds = b.Metrics["sync-rounds/op"]
			refGrants = b.Metrics["grants/op"]
		}
	}
	if refRounds == 0 || refGrants == 0 {
		t.Fatal("BENCH_federation.json lacks the gomaxprocs-1/partitions-4 reference entry")
	}

	// The exact workload of BenchmarkFederationScaling / -bench-fed-json.
	cfg := exp.DefaultMeshConfig(16)
	cfg.Rounds = 10
	cfg.NoiseEvents = 3000
	cfg.NoiseInterval = 20 * logical.Microsecond
	cfg.LinkLatency = 2 * logical.Millisecond
	res, err := exp.RunMesh(1, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := float64(res.CoordRounds); got > refRounds*1.25 {
		t.Errorf("sync rounds at 4 partitions regressed: %v > committed %v +25%%", got, refRounds)
	}
	if got := float64(res.CoordGrants); got > refGrants*1.25 {
		t.Errorf("grant count at 4 partitions regressed: %v > committed %v +25%%", got, refGrants)
	}
}
