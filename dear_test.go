package dear_test

// Integration tests exercising the public facade exactly as a downstream
// user would: assembling reactor programs, DEAR software components and
// simulated deployments through the root package only.

import (
	"encoding/binary"
	"testing"

	dear "repro"
)

func TestFacadeQuickstartProgram(t *testing.T) {
	env := dear.NewEnvironment(dear.Options{Fast: true, Timeout: dear.Duration(500 * dear.Millisecond)})
	src := env.NewReactor("src")
	sink := env.NewReactor("sink")
	out := dear.NewOutputPort[int](src, "out")
	in := dear.NewInputPort[int](sink, "in")
	dear.Connect(out, in)
	tick := dear.NewTimer(src, "tick", 0, dear.Duration(100*dear.Millisecond))
	sent := 0
	src.AddReaction("emit").Triggers(tick).Effects(out).Do(func(c *dear.ReactionCtx) {
		sent++
		out.Set(c, sent)
	})
	var got []int
	sink.AddReaction("recv").Triggers(in).Do(func(c *dear.ReactionCtx) {
		v, _ := in.Get(c)
		got = append(got, v)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 { // 0..500ms inclusive
		t.Errorf("received %d values: %v", len(got), got)
	}
	for i, v := range got {
		if v != i+1 {
			t.Errorf("got[%d] = %d", i, v)
		}
	}
}

func TestFacadeSimulatedDeployment(t *testing.T) {
	k := dear.NewKernel(5)
	net := dear.NewNetwork(k, dear.NetworkConfig{})
	h1 := net.AddHost("a", k.NewLocalClock(dear.ClockConfig{}, nil))
	h2 := net.AddHost("b", k.NewLocalClock(dear.ClockConfig{}, nil))

	iface := &dear.ServiceInterface{
		Name:  "Ping",
		ID:    0x6001,
		Major: 1,
		Methods: []dear.MethodSpec{
			{ID: 1, Name: "ping"},
		},
	}
	server, err := dear.NewRuntime(h1, dear.RuntimeConfig{Name: "server"})
	if err != nil {
		t.Fatal(err)
	}
	client, err := dear.NewRuntime(h2, dear.RuntimeConfig{Name: "client"})
	if err != nil {
		t.Fatal(err)
	}
	sk, err := server.NewSkeleton(iface, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sk.Handle("ping", func(c *dear.HandlerCtx, args []byte) ([]byte, error) {
		return append([]byte("pong:"), args...), nil
	}); err != nil {
		t.Fatal(err)
	}
	k.At(0, func() { sk.Offer() })

	var reply []byte
	client.Spawn("main", func(c *dear.HandlerCtx) {
		px, err := client.FindServiceSync(c.Process(), iface, 1, dear.Duration(dear.Second))
		if err != nil {
			t.Error(err)
			return
		}
		reply, err = px.Call("ping", []byte("x")).Get(c.Process())
		if err != nil {
			t.Error(err)
		}
	})
	k.Run(dear.Time(5 * dear.Second))
	if string(reply) != "pong:x" {
		t.Errorf("reply = %q", reply)
	}
}

func TestFacadeDearPipelineDeterministic(t *testing.T) {
	// Build the examples/pipeline scenario through the facade and verify
	// the controller's view is identical across physical seeds.
	iface := &dear.ServiceInterface{
		Name:  "Sensor",
		ID:    0x6101,
		Major: 1,
		Events: []dear.EventSpec{
			{ID: dear.EventID(1), Name: "m", Eventgroup: 1},
		},
	}
	run := func(seed uint64) []uint32 {
		k := dear.NewKernel(seed)
		net := dear.NewNetwork(k, dear.NetworkConfig{
			DefaultLatency: &dear.JitterLatency{
				Base:  dear.Duration(200 * dear.Microsecond),
				Sigma: dear.Duration(400 * dear.Microsecond),
				Max:   dear.Duration(3 * dear.Millisecond),
				Rng:   k.Rand("link"),
			},
		})
		e1 := net.AddHost("e1", k.NewLocalClock(dear.ClockConfig{}, nil))
		e2 := net.AddHost("e2", k.NewLocalClock(dear.ClockConfig{}, nil))
		tcfg := dear.TransactorConfig{
			Deadline: dear.Duration(2 * dear.Millisecond),
			Link:     dear.LinkConfig{Latency: dear.Duration(5 * dear.Millisecond)},
		}
		horizon := dear.Duration(2 * dear.Second)

		sensor, err := dear.NewSWC(e1, dear.RuntimeConfig{Name: "sensor"})
		if err != nil {
			t.Fatal(err)
		}
		sensor.Start(dear.StartOptions{KeepAlive: true, Timeout: horizon}, func(env *dear.Environment) error {
			sk, err := sensor.Runtime().NewSkeleton(iface, 1)
			if err != nil {
				return err
			}
			set, err := dear.NewServerEventTransactor(env, sensor, sk, "m", tcfg)
			if err != nil {
				return err
			}
			logic := env.NewReactor("logic")
			out := dear.NewOutputPort[[]byte](logic, "out")
			dear.Connect(out, set.In)
			timer := dear.NewTimer(logic, "t", dear.Duration(300*dear.Millisecond), dear.Duration(50*dear.Millisecond))
			n := uint32(0)
			logic.AddReaction("emit").Triggers(timer).Effects(out).Do(func(c *dear.ReactionCtx) {
				n++
				var b [4]byte
				binary.BigEndian.PutUint32(b[:], n*7)
				out.Set(c, b[:])
			})
			sk.Offer()
			return nil
		})

		ctrl, err := dear.NewSWC(e2, dear.RuntimeConfig{Name: "ctrl"})
		if err != nil {
			t.Fatal(err)
		}
		var seen []uint32
		ctrl.Start(dear.StartOptions{KeepAlive: true, Timeout: horizon}, func(env *dear.Environment) error {
			cet, err := dear.NewClientEventTransactor(env, ctrl, iface, 1, "m", tcfg)
			if err != nil {
				return err
			}
			logic := env.NewReactor("logic")
			in := dear.NewInputPort[[]byte](logic, "in")
			dear.Connect(cet.Out, in)
			logic.AddReaction("recv").Triggers(in).Do(func(c *dear.ReactionCtx) {
				v, _ := in.Get(c)
				seen = append(seen, binary.BigEndian.Uint32(v))
			})
			return nil
		})
		k.Run(dear.Time(horizon) + dear.Time(dear.Second))
		if sensor.Err() != nil || ctrl.Err() != nil {
			t.Fatalf("swc errors: %v / %v", sensor.Err(), ctrl.Err())
		}
		return seen
	}
	a, b := run(1), run(1234)
	if len(a) == 0 {
		t.Fatal("no data seen")
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ across seeds: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("values diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestFacadeTagAlgebra(t *testing.T) {
	tag := dear.Tag{Time: dear.Time(100 * dear.Millisecond), Microstep: 0}
	later := tag.Delay(dear.Duration(5 * dear.Millisecond))
	if !tag.Before(later) {
		t.Error("Delay must advance tags")
	}
	micro := tag.Delay(0)
	if micro.Time != tag.Time || micro.Microstep != 1 {
		t.Errorf("zero delay = %v", micro)
	}
	lc := dear.LinkConfig{Latency: dear.Duration(5 * dear.Millisecond), ClockError: dear.Duration(dear.Millisecond)}
	if lc.SafeToProcessOffset() != dear.Duration(6*dear.Millisecond) {
		t.Errorf("offset = %v", lc.SafeToProcessOffset())
	}
}
