package dear_test

// Documentation gates, run by the CI docs job:
//
//   - TestDocsGodocCoverage is the godoc audit for the determinism
//     substrate (internal/des, internal/simnet) and the trace
//     subsystem (internal/trace): every exported identifier must
//     carry a doc comment. These packages define the determinism
//     contract and its observable artifact, so an undocumented export
//     there is a contract hole.
//   - TestDocsMarkdownLinks checks every relative link and local anchor
//     in the top-level markdown docs.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// auditedPackages are the directories whose exported identifiers must
// all be documented.
var auditedPackages = []string{"internal/des", "internal/simnet", "internal/trace", "internal/monitor"}

func TestDocsGodocCoverage(t *testing.T) {
	for _, dir := range auditedPackages {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		for _, pkg := range pkgs {
			for fname, file := range pkg.Files {
				for _, decl := range file.Decls {
					checkDeclDocs(t, fset, fname, decl)
				}
			}
		}
	}
}

func checkDeclDocs(t *testing.T, fset *token.FileSet, fname string, decl ast.Decl) {
	t.Helper()
	undocumented := func(name string, pos token.Pos) {
		t.Errorf("%s: exported %s has no doc comment", fset.Position(pos), name)
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() {
			return
		}
		if d.Recv != nil && !receiverExported(d.Recv) {
			return
		}
		if d.Doc == nil {
			undocumented(d.Name.Name, d.Pos())
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if !s.Name.IsExported() {
					continue
				}
				if d.Doc == nil && s.Doc == nil && s.Comment == nil {
					undocumented(s.Name.Name, s.Pos())
				}
				// Exported fields of exported structs need docs too.
				if st, ok := s.Type.(*ast.StructType); ok {
					for _, f := range st.Fields.List {
						for _, n := range f.Names {
							if n.IsExported() && f.Doc == nil && f.Comment == nil {
								undocumented(s.Name.Name+"."+n.Name, n.Pos())
							}
						}
					}
				}
			case *ast.ValueSpec:
				for _, n := range s.Names {
					if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						undocumented(n.Name, n.Pos())
					}
				}
			}
		}
	}
}

// receiverExported reports whether a method's receiver type is exported
// (methods on unexported types are not part of the public surface).
func receiverExported(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return true
	}
	typ := recv.List[0].Type
	for {
		switch x := typ.(type) {
		case *ast.StarExpr:
			typ = x.X
		case *ast.IndexExpr: // generic receiver
			typ = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}

// checkedDocs are the markdown files whose links must resolve.
var checkedDocs = []string{"README.md", "DESIGN.md", "ARCHITECTURE.md", "ROADMAP.md", "CHANGES.md"}

var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)
var mdHeading = regexp.MustCompile(`(?m)^#{1,6}\s+(.+)$`)

func TestDocsMarkdownLinks(t *testing.T) {
	anchors := map[string]map[string]bool{}
	for _, doc := range checkedDocs {
		body, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("%s missing: %v", doc, err)
		}
		set := map[string]bool{}
		for _, m := range mdHeading.FindAllStringSubmatch(string(body), -1) {
			set[headingAnchor(m[1])] = true
		}
		anchors[doc] = set
	}
	for _, doc := range checkedDocs {
		body, _ := os.ReadFile(doc)
		for _, m := range mdLink.FindAllStringSubmatch(string(body), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") {
				continue
			}
			file, frag, _ := strings.Cut(target, "#")
			if file == "" {
				file = doc
			}
			file = filepath.Clean(file)
			if _, err := os.Stat(file); err != nil {
				t.Errorf("%s: broken link %q: %v", doc, target, err)
				continue
			}
			if frag != "" {
				set, tracked := anchors[file]
				if !tracked {
					continue // anchors only verified within the checked set
				}
				if !set[frag] {
					t.Errorf("%s: link %q: no heading anchors to #%s in %s", doc, target, frag, file)
				}
			}
		}
	}
}

// headingAnchor approximates GitHub's heading→anchor slug rule: lower
// case, spaces to dashes, punctuation stripped.
func headingAnchor(h string) string {
	h = strings.ToLower(strings.TrimSpace(h))
	var b strings.Builder
	for _, r := range h {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ' || r == '-':
			b.WriteRune('-')
		}
	}
	return b.String()
}

// Ensure the experiment index and the architecture document stay in
// sync on the experiment count: every E-number mentioned in README must
// have a row in DESIGN.md's index table.
func TestDocsExperimentIndexCoverage(t *testing.T) {
	design, err := os.ReadFile("DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile(`\bE(\d+)\b`)
	indexed := map[string]bool{}
	for _, line := range strings.Split(string(design), "\n") {
		if strings.HasPrefix(line, "| E") {
			for _, m := range re.FindAllStringSubmatch(line, 1) {
				indexed[m[1]] = true
			}
		}
	}
	for _, m := range re.FindAllStringSubmatch(string(readme), -1) {
		if !indexed[m[1]] {
			t.Errorf("README mentions E%s but DESIGN.md's experiment index has no such row", m[1])
		}
	}
	if len(indexed) < 11 {
		t.Errorf("experiment index has only %d rows; expected at least E1–E11", len(indexed))
	}
}
