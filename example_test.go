package dear_test

import (
	"fmt"

	dear "repro"
)

// A timer-driven reactor program: logical time makes the output exactly
// reproducible.
func ExampleNewEnvironment() {
	env := dear.NewEnvironment(dear.Options{Fast: true, Timeout: dear.Duration(300 * dear.Millisecond)})
	r := env.NewReactor("clock")
	tick := dear.NewTimer(r, "tick", 0, dear.Duration(100*dear.Millisecond))
	r.AddReaction("show").Triggers(tick).Do(func(c *dear.ReactionCtx) {
		fmt.Println("tick at", c.Elapsed())
	})
	if err := env.Run(); err != nil {
		fmt.Println(err)
	}
	// Output:
	// tick at 0s
	// tick at 100ms
	// tick at 200ms
	// tick at 300ms
}

// Ports connect reactors with logically instantaneous channels: the
// downstream reaction observes the value at the same tag.
func ExampleConnect() {
	env := dear.NewEnvironment(dear.Options{Fast: true})
	producer := env.NewReactor("producer")
	consumer := env.NewReactor("consumer")
	out := dear.NewOutputPort[string](producer, "out")
	in := dear.NewInputPort[string](consumer, "in")
	dear.Connect(out, in)

	producer.AddReaction("emit").Triggers(producer.Startup()).Effects(out).Do(func(c *dear.ReactionCtx) {
		out.Set(c, "hello")
	})
	consumer.AddReaction("recv").Triggers(in).Do(func(c *dear.ReactionCtx) {
		v, _ := in.Get(c)
		fmt.Println("received:", v)
	})
	if err := env.Run(); err != nil {
		fmt.Println(err)
	}
	// Output:
	// received: hello
}

// Logical actions schedule future events within a reactor; a zero delay
// advances the microstep, keeping causally distinct events ordered even
// at the same time point.
func ExampleNewLogicalAction() {
	env := dear.NewEnvironment(dear.Options{Fast: true})
	r := env.NewReactor("r")
	act := dear.NewLogicalAction[int](r, "again", 0)
	r.AddReaction("kick").Triggers(r.Startup()).Effects(act).Do(func(c *dear.ReactionCtx) {
		act.Schedule(c, 1, 0)
	})
	r.AddReaction("chain").Triggers(act).Effects(act).Do(func(c *dear.ReactionCtx) {
		v, _ := act.Get(c)
		fmt.Printf("value %d at microstep %d\n", v, c.Tag().Microstep)
		if v < 3 {
			act.Schedule(c, v+1, 0)
		}
	})
	if err := env.Run(); err != nil {
		fmt.Println(err)
	}
	// Output:
	// value 1 at microstep 1
	// value 2 at microstep 2
	// value 3 at microstep 3
}

// Deadlines bind logical to physical time: a reaction invoked too late
// runs its handler instead of its body, making timing violations
// observable instead of silent. Run on a simulated clock, physical time
// is deterministic, so the violation is exactly reproducible.
func ExampleReaction_WithDeadline() {
	k := dear.NewKernel(1)
	k.Spawn("env", func(p *dear.Process) {
		env := dear.NewEnvironment(dear.Options{
			Clock:   dear.NewSimClock(p, nil),
			Timeout: dear.Duration(60 * dear.Millisecond),
		})
		r := env.NewReactor("r")
		tick := dear.NewTimer(r, "t", 0, dear.Duration(25*dear.Millisecond))
		slow := dear.NewLogicalAction[int](r, "slow", 0)
		n := 0
		r.AddReaction("work").Triggers(tick).Effects(slow).Do(func(c *dear.ReactionCtx) {
			n++
			if n == 2 {
				c.DoWork(dear.Duration(10 * dear.Millisecond)) // overruns once
			}
			slow.Schedule(c, n, 0)
		})
		r.AddReaction("check").Triggers(slow).
			WithDeadline(dear.Duration(5*dear.Millisecond), func(c *dear.ReactionCtx) {
				v, _ := slow.Get(c)
				fmt.Printf("deadline violated for %d\n", v)
			}).
			Do(func(c *dear.ReactionCtx) {
				v, _ := slow.Get(c)
				fmt.Printf("on time: %d\n", v)
			})
		if err := env.Run(); err != nil {
			fmt.Println(err)
		}
	})
	k.RunAll()
	// Output:
	// on time: 1
	// deadline violated for 2
	// on time: 3
}
